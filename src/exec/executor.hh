/**
 * @file
 * The AST executor: runs generated loop nests over real buffers.
 *
 * This header declares the Tier-0 reference interpreter (run()) and
 * the runtime storage (Buffers) shared by every execution tier. The
 * interpreter re-evaluates Expr trees and re-derives affine offsets
 * per scalar access; it is the semantic reference the faster tiers
 * (exec/bytecode.hh, exec/native.hh -- see exec/engine.hh for the
 * tier dispatch) are differentially tested against: per-iteration
 * overhead is constant across scheduling strategies, so
 * strategy-relative ratios (which is what the paper's evaluation
 * compares) are preserved, while the memory-access *pattern* is
 * exactly that of the generated code -- which is what the cache
 * simulator consumes via the trace hook.
 */

#ifndef POLYFUSE_EXEC_EXECUTOR_HH
#define POLYFUSE_EXEC_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "codegen/ast.hh"
#include "exec/trace.hh"
#include "ir/program.hh"

namespace polyfuse {
namespace exec {

/** The runtime storage of one program run. */
class Buffers
{
  public:
    /** Allocate one zero-initialized buffer per program tensor. */
    explicit Buffers(const ir::Program &program);

    /** Number of tensors (== the program's tensor count). */
    size_t numTensors() const { return data_.size(); }

    std::vector<double> &data(int tensor) { return data_.at(tensor); }
    const std::vector<double> &data(int tensor) const
    { return data_.at(tensor); }

    /** Row-major extents of a tensor. */
    const std::vector<int64_t> &extents(int tensor) const
    { return extents_.at(tensor); }

    /** Row-major strides of a tensor (innermost dim has stride 1). */
    const std::vector<int64_t> &strides(int tensor) const
    { return strides_.at(tensor); }

    /**
     * Row-major linear offset of the @p rank indices at @p idx within
     * @p tensor (bounds-checked; throws FatalError when outside).
     */
    int64_t offsetOf(int tensor, const int64_t *idx,
                     size_t rank) const;

    /** Convenience overload for callers holding a vector. */
    int64_t
    offsetOf(int tensor, const std::vector<int64_t> &idx) const
    {
        return offsetOf(tensor, idx.data(), idx.size());
    }

    /** Fill a tensor with a deterministic pseudo-random pattern. */
    void fillPattern(int tensor, uint64_t seed);

  private:
    std::vector<std::vector<double>> data_;
    std::vector<std::vector<int64_t>> extents_;
    std::vector<std::vector<int64_t>> strides_;
};

/** Counters of one execution. */
struct ExecStats
{
    uint64_t instances = 0; ///< statement instances executed
    uint64_t instancesParallel = 0; ///< instances under parallel loops
    double flops = 0;       ///< per-statement ops estimate summed
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t guardFails = 0; ///< instances suppressed by guards
    uint64_t simdLoops = 0;  ///< inner-loop runs taken vector-wide
    uint64_t simdLanes = 0;  ///< statement instances executed in blocks
    double seconds = 0;      ///< wall-clock of the run
};

/** Execute @p ast over @p buffers with the reference interpreter. */
ExecStats run(const ir::Program &program, const codegen::AstPtr &ast,
              Buffers &buffers, const TraceHook &trace = nullptr);

} // namespace exec
} // namespace polyfuse

#endif // POLYFUSE_EXEC_EXECUTOR_HH
