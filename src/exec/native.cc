#include "exec/native.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include <dlfcn.h>
#include <unistd.h>

#include "codegen/render.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace exec {

using codegen::AstKind;
using codegen::AstNode;
using codegen::AstPtr;
using ir::Expr;
using ir::Program;
using ir::Statement;

namespace {

/** Render a double so the C compiler reparses the exact bits. */
std::string
hexDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** The lexically active scratchpad of one tensor. */
struct ScratchScope
{
    std::string buf;                 ///< local array variable
    std::vector<std::string> lo;     ///< per-dim origin variables
    std::vector<std::string> ext;    ///< per-dim extent variables
};

class Emitter
{
  public:
    Emitter(const Program &p, NativeParMode mode, unsigned threads,
            const std::vector<deps::TileBandGraph> *bands)
        : prog_(p), mode_(mode), threads_(threads)
    {
        scratch_.resize(p.tensors().size());
        if (bands)
            for (const auto &b : *bands)
                if (b.cls == deps::TileBandClass::FullyParallel)
                    par_bands_.insert(b.bandId);
    }

    std::string
    run(const AstPtr &ast)
    {
        collectVarNames(ast);
        os_ << "/* polyfuse native kernel (" << prog_.name()
            << ") -- generated; do not edit */\n"
            << "#include <math.h>\n"
            << "#include <stdint.h>\n"
            << "#include <stdlib.h>\n";
        if (mode_ == NativeParMode::Threads)
            os_ << "#include <thread>\n"
                << "#include <vector>\n";
        os_ << "\n" << codegen::renderHelperPreamble() << "\n";
        // The Threads mode is a C++ TU (std::thread), so the entry
        // point keeps C linkage for dlsym.
        if (mode_ == NativeParMode::Threads)
            os_ << "extern \"C\" ";
        os_ << "void pf_kernel(double **pf_bufs)\n{\n";
        for (const auto &name : prog_.params())
            line(1) << "const int64_t " << name << " = "
                    << prog_.paramValue(name) << ";\n";
        if (!prog_.params().empty())
            os_ << "\n";
        // Parameters can be unused when codegen folded them away.
        for (const auto &name : prog_.params())
            line(1) << "(void)" << name << ";\n";
        visit(ast, 1);
        os_ << "}\n";
        return os_.str();
    }

    /** Top-level tile bands that got a tile-team. */
    unsigned regionsParallel() const { return regions_parallel_; }

    /** Top-level tile bands kept sequential. */
    unsigned regionsSequential() const { return regions_sequential_; }

  private:
    std::ostream &
    line(unsigned depth)
    {
        os_ << std::string(depth * 2, ' ');
        return os_;
    }

    void
    collectVarNames(const AstPtr &n)
    {
        if (!n)
            return;
        if (n->kind == AstKind::For) {
            if (var_names_.size() <= size_t(n->var))
                var_names_.resize(n->var + 1);
            var_names_[n->var] = n->varName.empty()
                                     ? "pf_c" + std::to_string(n->var)
                                     : n->varName;
        }
        for (const auto &c : n->children)
            collectVarNames(c);
    }

    /** The index expression of instance dimension @p d of node @p n:
     *  loop var + constant offset. */
    std::string
    ivExpr(const AstNode &n, size_t d) const
    {
        const auto &[var, off] = n.bindings[d];
        std::string s = var_names_[var];
        if (off > 0)
            s += " + " + std::to_string(off);
        else if (off < 0)
            s += " - " + std::to_string(-off);
        return s;
    }

    /** Per-dim index expressions of affine access @p a at node @p n,
     *  access parameters folded numerically. */
    std::vector<std::string>
    accessIndexExprs(const AstNode &n, const ir::Access &a) const
    {
        const Statement &s = prog_.statement(n.stmt);
        size_t nd = s.numDims();
        std::vector<int64_t> pvals;
        for (const auto &pname : a.rel.space().params())
            pvals.push_back(prog_.paramValue(pname));
        std::vector<std::string> out;
        for (const auto &row : a.indexExprs) {
            int64_t c = row.back();
            for (size_t p = 0; p < pvals.size(); ++p)
                c += row[nd + p] * pvals[p];
            std::ostringstream e;
            bool first = true;
            for (size_t d = 0; d < nd; ++d) {
                if (row[d] == 0)
                    continue;
                if (!first)
                    e << " + ";
                if (row[d] != 1)
                    e << row[d] << " * ";
                e << "(" << ivExpr(n, d) << ")";
                first = false;
            }
            if (first)
                e << c;
            else if (c > 0)
                e << " + " << c;
            else if (c < 0)
                e << " - " << -c;
            out.push_back(e.str());
        }
        return out;
    }

    /**
     * Horner-form linear offset of @p idx into tensor @p tensor's
     * lexically active storage (scratchpad local or global buffer),
     * matching the interpreter's offset arithmetic exactly.
     */
    std::string
    storageRef(int tensor, const std::vector<std::string> &idx) const
    {
        const auto &stack = scratch_[tensor];
        std::ostringstream r;
        if (!stack.empty()) {
            const ScratchScope &s = stack.back();
            r << s.buf << "[";
            if (idx.empty()) {
                r << "0";
            } else {
                std::string off =
                    "(" + idx[0] + " - " + s.lo[0] + ")";
                for (size_t d = 1; d < idx.size(); ++d)
                    off = "(" + off + ") * " + s.ext[d] + " + (" +
                          idx[d] + " - " + s.lo[d] + ")";
                r << off;
            }
            r << "]";
            return r.str();
        }
        r << "pf_bufs[" << tensor << "][";
        if (idx.empty()) {
            r << "0";
        } else {
            std::string off = "(" + idx[0] + ")";
            for (size_t d = 1; d < idx.size(); ++d)
                off = "(" + off + ") * " +
                      std::to_string(prog_.tensorExtent(tensor, d)) +
                      " + (" + idx[d] + ")";
            r << off;
        }
        r << "]";
        return r.str();
    }

    /** Render statement body @p e of node @p n as a C expression
     *  bit-identical to the interpreter's evaluation. */
    std::string
    expr(const Expr &e, const AstNode &n) const
    {
        switch (e.kind) {
          case Expr::Kind::Const:
            return hexDouble(e.value);
          case Expr::Kind::Param:
            return hexDouble(double(prog_.paramValue(e.param)));
          case Expr::Kind::Iter:
            return "(double)(" + ivExpr(n, e.iter) + ")";
          case Expr::Kind::LoadAcc: {
            const Statement &s = prog_.statement(n.stmt);
            const ir::Access &a =
                s.accesses()[s.readIndices().at(e.access)];
            if (!a.hasExprs || a.indexExprs.empty())
                fatal("LoadAcc on non-affine access; use loadIdx");
            return storageRef(a.tensor, accessIndexExprs(n, a));
          }
          case Expr::Kind::LoadIdx: {
            std::vector<std::string> idx;
            for (const auto &arg : e.args)
                idx.push_back("(int64_t)llround(" + expr(*arg, n) +
                              ")");
            return storageRef(e.tensor, idx);
          }
          case Expr::Kind::Unary: {
            std::string x = "(" + expr(*e.args[0], n) + ")";
            switch (e.uop) {
              case ir::UnOp::Neg: return "(-" + x + ")";
              case ir::UnOp::Exp: return "exp" + x;
              case ir::UnOp::Log:
                return "log(fabs" + x + " + 1e-12)";
              case ir::UnOp::Sqrt: return "sqrt(fabs" + x + ")";
              case ir::UnOp::Abs: return "fabs" + x;
              case ir::UnOp::Relu:
                return "(" + x + " > 0 ? " + x + " : 0.0)";
              case ir::UnOp::Floor: return "floor" + x;
            }
            panic("bad unop");
          }
          case Expr::Kind::Binary: {
            std::string a = "(" + expr(*e.args[0], n) + ")";
            std::string b = "(" + expr(*e.args[1], n) + ")";
            switch (e.bop) {
              case ir::BinOp::Add: return "(" + a + " + " + b + ")";
              case ir::BinOp::Sub: return "(" + a + " - " + b + ")";
              case ir::BinOp::Mul: return "(" + a + " * " + b + ")";
              case ir::BinOp::Div:
                // Matches the interpreter's guarded division.
                return "(" + a + " / (" + b + " == 0 ? 1e-12 : " +
                       b + "))";
              case ir::BinOp::Min:
                // std::min/std::max tie-breaking, spelled out.
                return "(" + b + " < " + a + " ? " + b + " : " + a +
                       ")";
              case ir::BinOp::Max:
                return "(" + a + " < " + b + " ? " + b + " : " + a +
                       ")";
            }
            panic("bad binop");
          }
        }
        panic("bad expr kind");
    }

    void
    emitAlloc(const AstNode &n, unsigned depth)
    {
        std::vector<int> pushed;
        line(depth) << "{\n";
        ++depth;
        for (const auto &promo : n.promotions) {
            int id = scope_id_++;
            std::string tag = std::to_string(id);
            unsigned rank = unsigned(promo.boxLo.size());
            ScratchScope sc;
            sc.buf = "pf_loc_" + tag;
            line(depth) << "/* scratchpad for "
                        << prog_.tensor(promo.tensor).name
                        << " */\n";
            std::string size = "pf_size_" + tag;
            line(depth) << "int64_t " << size << " = 1;\n";
            for (unsigned d = 0; d < rank; ++d) {
                std::string lo = "pf_lo" + std::to_string(d) + "_" +
                                 tag;
                std::string hi = "pf_hi" + std::to_string(d) + "_" +
                                 tag;
                std::string ext = "pf_ext" + std::to_string(d) +
                                  "_" + tag;
                line(depth)
                    << "int64_t " << lo << " = pf_max("
                    << codegen::renderBound(prog_, promo.boxLo[d],
                                            true, var_names_)
                    << ", 0);\n";
                line(depth)
                    << "int64_t " << hi << " = pf_min("
                    << codegen::renderBound(prog_, promo.boxHi[d],
                                            false, var_names_)
                    << ", "
                    << prog_.tensorExtent(promo.tensor, d) - 1
                    << ");\n";
                line(depth) << "if (" << hi << " < " << lo << ") "
                            << hi << " = " << lo << " - 1;\n";
                line(depth) << "int64_t " << ext << " = " << hi
                            << " - " << lo << " + 1;\n";
                line(depth) << size << " *= " << ext << " > 0 ? "
                            << ext << " : 0;\n";
                sc.lo.push_back(lo);
                sc.ext.push_back(ext);
            }
            line(depth) << "double *" << sc.buf
                        << " = (double *)calloc((size_t)(" << size
                        << " > 0 ? " << size << " : 1), "
                        << "sizeof(double));\n";
            // Copy-in from the *currently active* storage view of
            // the tensor -- which is the global buffer, matching the
            // interpreter (promotions never nest per tensor today,
            // and copyIn always reads the global buffer).
            line(depth) << "if (" << size << " > 0) {\n";
            {
                unsigned d2 = depth + 1;
                std::vector<std::string> src_idx, dst_idx;
                for (unsigned d = 0; d < rank; ++d) {
                    std::string it = "pf_ci" + std::to_string(d) +
                                     "_" + tag;
                    line(d2) << "for (int64_t " << it << " = "
                             << sc.lo[d] << "; " << it << " < "
                             << sc.lo[d] << " + " << sc.ext[d]
                             << "; ++" << it << ")\n";
                    src_idx.push_back(it);
                    ++d2;
                }
                // Destination offset: Horner over box extents.
                std::string dst = rank == 0 ? std::string("0")
                                            : "(" + src_idx[0] +
                                                  " - " + sc.lo[0] +
                                                  ")";
                for (unsigned d = 1; d < rank; ++d)
                    dst = "(" + dst + ") * " + sc.ext[d] + " + (" +
                          src_idx[d] + " - " + sc.lo[d] + ")";
                line(d2) << sc.buf << "[" << dst << "] = "
                         << storageRefGlobal(promo.tensor, src_idx)
                         << ";\n";
            }
            line(depth) << "}\n";
            scratch_[promo.tensor].push_back(std::move(sc));
            pushed.push_back(promo.tensor);
        }
        // Tile loops under an Alloc scope are never team-scheduled
        // (mirrors the bytecode tape's scanTileRegions, which does
        // not enter Alloc scopes).
        ++nest_;
        for (const auto &c : n.children)
            visit(c, depth);
        --nest_;
        for (auto it = pushed.rbegin(); it != pushed.rend(); ++it) {
            line(depth) << "free("
                        << scratch_[*it].back().buf << ");\n";
            scratch_[*it].pop_back();
        }
        --depth;
        line(depth) << "}\n";
    }

    /** storageRef pinned to the global buffer (copy-in source). */
    std::string
    storageRefGlobal(int tensor,
                     const std::vector<std::string> &idx) const
    {
        std::ostringstream r;
        r << "pf_bufs[" << tensor << "][";
        if (idx.empty()) {
            r << "0";
        } else {
            std::string off = "(" + idx[0] + ")";
            for (size_t d = 1; d < idx.size(); ++d)
                off = "(" + off + ") * " +
                      std::to_string(prog_.tensorExtent(tensor, d)) +
                      " + (" + idx[d] + ")";
            r << off;
        }
        r << "]";
        return r.str();
    }

    void
    emitStmt(const AstNode &n, unsigned depth)
    {
        const Statement &s = prog_.statement(n.stmt);
        line(depth) << "{\n";
        ++depth;
        if (!n.guards.empty()) {
            std::vector<std::string> conds;
            for (const auto &g : n.guards)
                conds.push_back(
                    "(" + codegen::renderGuard(prog_, g, var_names_) +
                    ")");
            std::string joined = conds[0];
            for (size_t i = 1; i < conds.size(); ++i)
                joined += " && " + conds[i];
            line(depth) << "if (" << joined << ") {\n";
            ++depth;
        }
        if (s.body()) {
            line(depth) << "double pf_v = " << expr(*s.body(), n)
                        << ";\n";
            if (s.writeIndex() >= 0) {
                const ir::Access &w = s.writeAccess();
                if (!w.hasExprs || w.indexExprs.empty())
                    fatal("non-affine write access unsupported");
                line(depth)
                    << storageRef(w.tensor,
                                  accessIndexExprs(n, w))
                    << " = pf_v;\n";
            } else {
                line(depth) << "(void)pf_v;\n";
            }
        }
        if (!n.guards.empty()) {
            --depth;
            line(depth) << "}\n";
        }
        --depth;
        line(depth) << "}\n";
    }

    void
    visit(const AstPtr &n, unsigned depth)
    {
        if (!n)
            return;
        switch (n->kind) {
          case AstKind::Block:
            for (const auto &c : n->children)
                visit(c, depth);
            return;
          case AstKind::Alloc:
            emitAlloc(*n, depth);
            return;
          case AstKind::For: {
            const std::string &v = var_names_[n->var];
            const bool top_tile =
                nest_ == 0 && n->tileLoop && n->bandLevel == 0;
            const bool team = top_tile &&
                              mode_ != NativeParMode::Seq &&
                              par_bands_.count(n->bandId) != 0;
            if (top_tile)
                ++(team ? regions_parallel_ : regions_sequential_);
            line(depth) << "{\n";
            ++depth;
            line(depth) << "const int64_t " << v << "_lb = "
                        << codegen::renderBound(prog_, n->lb, true,
                                                var_names_)
                        << ";\n";
            line(depth) << "const int64_t " << v << "_ub = "
                        << codegen::renderBound(prog_, n->ub, false,
                                                var_names_)
                        << ";\n";
            ++nest_;
            if (team && mode_ == NativeParMode::Omp) {
                emitOmpFor(*n, v, depth);
            } else if (team) {
                emitThreadFor(*n, v, depth);
            } else {
                line(depth) << "for (int64_t " << v << " = " << v
                            << "_lb; " << v << " <= " << v
                            << "_ub; ++" << v << ") {\n";
                for (const auto &c : n->children)
                    visit(c, depth + 1);
                line(depth) << "}\n";
            }
            --nest_;
            --depth;
            line(depth) << "}\n";
            return;
          }
          case AstKind::Stmt:
            emitStmt(*n, depth);
            return;
        }
    }

    /**
     * The OpenMP tile-team: a static schedule over the tiles of a
     * band whose classification proves tile independence. The
     * thread count is baked in (it is part of the kernel-cache
     * key), so a cached kernel cannot silently change team shape.
     */
    void
    emitOmpFor(const AstNode &n, const std::string &v,
               unsigned depth)
    {
        line(depth) << "#pragma omp parallel for num_threads("
                    << threads_ << ") schedule(static)\n";
        line(depth) << "for (int64_t " << v << " = " << v << "_lb; "
                    << v << " <= " << v << "_ub; ++" << v << ") {\n";
        for (const auto &c : n.children)
            visit(c, depth + 1);
        line(depth) << "}\n";
    }

    /**
     * The generated std::thread tile-team: the loop body becomes a
     * range lambda; worker t takes the contiguous chunk
     * [lb + n*t/nt, lb + n*(t+1)/nt - 1] and chunk 0 runs on the
     * calling thread. A std::thread that fails to spawn degrades
     * inside the kernel: the catch keeps the chunks that did spawn,
     * and the unspawned remainder runs sequentially on the calling
     * thread, so the buffers never depend on how many workers
     * actually started.
     */
    void
    emitThreadFor(const AstNode &n, const std::string &v,
                  unsigned depth)
    {
        std::string tag = std::to_string(team_id_++);
        std::string cnt = "pf_n_" + tag;
        std::string nt = "pf_nt_" + tag;
        std::string body = "pf_body_" + tag;
        std::string team = "pf_team_" + tag;
        line(depth) << "const int64_t " << cnt << " = " << v
                    << "_ub - " << v << "_lb + 1;\n";
        line(depth) << "const auto " << body
                    << " = [&](int64_t pf_b, int64_t pf_e) {\n";
        line(depth + 1) << "for (int64_t " << v << " = pf_b; " << v
                        << " <= pf_e; ++" << v << ") {\n";
        for (const auto &c : n.children)
            visit(c, depth + 2);
        line(depth + 1) << "}\n";
        line(depth) << "};\n";
        line(depth) << "if (" << cnt << " > 1) {\n";
        {
            unsigned d = depth + 1;
            line(d) << "const int64_t " << nt << " = " << cnt
                    << " < " << threads_ << " ? " << cnt << " : "
                    << threads_ << ";\n";
            line(d) << "std::vector<std::thread> " << team << ";\n";
            line(d) << team << ".reserve((size_t)" << nt
                    << " - 1);\n";
            line(d) << "try {\n";
            line(d + 1) << "for (int64_t pf_t = 1; pf_t < " << nt
                        << "; ++pf_t)\n";
            line(d + 2) << team << ".emplace_back(" << body << ", "
                        << v << "_lb + " << cnt << " * pf_t / "
                        << nt << ", " << v << "_lb + " << cnt
                        << " * (pf_t + 1) / " << nt << " - 1);\n";
            line(d) << "} catch (...) {\n";
            line(d + 1) << "/* spawn failed; the unspawned chunks "
                           "run below on this thread */\n";
            line(d) << "}\n";
            line(d) << body << "(" << v << "_lb, " << v << "_lb + "
                    << cnt << " / " << nt << " - 1);\n";
            line(d) << "for (int64_t pf_t = (int64_t)" << team
                    << ".size() + 1; pf_t < " << nt << "; ++pf_t)\n";
            line(d + 1) << body << "(" << v << "_lb + " << cnt
                        << " * pf_t / " << nt << ", " << v
                        << "_lb + " << cnt << " * (pf_t + 1) / "
                        << nt << " - 1);\n";
            line(d) << "for (auto &pf_th : " << team
                    << ") pf_th.join();\n";
        }
        line(depth) << "} else if (" << cnt << " == 1) {\n";
        line(depth + 1) << body << "(" << v << "_lb, " << v
                        << "_ub);\n";
        line(depth) << "}\n";
    }

    const Program &prog_;
    NativeParMode mode_ = NativeParMode::Seq;
    unsigned threads_ = 1;
    std::set<int> par_bands_; ///< fully-parallel band ids
    std::ostringstream os_;
    std::vector<std::string> var_names_;
    std::vector<std::vector<ScratchScope>> scratch_;
    int scope_id_ = 0;
    int team_id_ = 0;
    int nest_ = 0; ///< enclosing For/Alloc depth (0: top level)
    unsigned regions_parallel_ = 0;
    unsigned regions_sequential_ = 0;
};

/** Locate a working C compiler once; empty when there is none. */
const std::string &
compilerPath()
{
    static std::mutex mu;
    static bool probed = false;
    static std::string path;
    std::lock_guard<std::mutex> lock(mu);
    if (probed)
        return path;
    probed = true;
    std::vector<std::string> candidates;
    if (const char *cc = std::getenv("CC"))
        candidates.push_back(cc);
    candidates.insert(candidates.end(), {"cc", "gcc", "clang"});
    for (const auto &c : candidates) {
        std::string cmd = c + " --version > /dev/null 2>&1";
        if (std::system(cmd.c_str()) == 0) {
            path = c;
            break;
        }
    }
    return path;
}

/** Compile @p code as @p file_name under @p cmd_prefix into a
 *  throwaway shared object; true when the toolchain handles it. */
bool
probeCompile(const std::string &file_name, const std::string &code,
             const std::string &cmd_prefix)
{
    char tmpl[] = "/tmp/pf_probe_XXXXXX";
    if (!mkdtemp(tmpl))
        return false;
    std::string dir = tmpl;
    std::string src = dir + "/" + file_name;
    std::string out = dir + "/probe.so";
    bool ok = false;
    {
        std::ofstream f(src);
        f << code;
        ok = bool(f);
    }
    if (ok) {
        std::string cmd = cmd_prefix + " -o " + out + " " + src +
                          " > /dev/null 2>&1";
        ok = std::system(cmd.c_str()) == 0;
    }
    std::remove(src.c_str());
    std::remove(out.c_str());
    rmdir(dir.c_str());
    return ok;
}

/** True when the C toolchain accepts *and links* -fopenmp -- the
 *  probe contains a real parallel-for so a clang without libomp
 *  fails here, not in a kernel compile (cached). */
bool
ompAvailable()
{
    static std::mutex mu;
    static bool probed = false;
    static bool ok = false;
    std::lock_guard<std::mutex> lock(mu);
    if (probed)
        return ok;
    probed = true;
    const std::string &cc = compilerPath();
    if (cc.empty())
        return ok;
    ok = probeCompile("probe.c",
                      "#include <omp.h>\n"
                      "int pf_probe(void)\n{\n"
                      "  int n = 0;\n"
                      "#pragma omp parallel for reduction(+ : n)\n"
                      "  for (int i = 0; i < 4; ++i)\n"
                      "    n += omp_get_thread_num() + i;\n"
                      "  return n;\n}\n",
                      cc + " -O1 -fPIC -shared -fopenmp");
    return ok;
}

/** Locate a C++ compiler that builds a std::thread shared object
 *  with -pthread; empty when there is none (cached). */
const std::string &
cxxCompilerPath()
{
    static std::mutex mu;
    static bool probed = false;
    static std::string path;
    std::lock_guard<std::mutex> lock(mu);
    if (probed)
        return path;
    probed = true;
    std::vector<std::string> candidates;
    if (const char *cxx = std::getenv("CXX"))
        candidates.push_back(cxx);
    candidates.insert(candidates.end(), {"c++", "g++", "clang++"});
    const std::string code = "#include <thread>\n"
                             "extern \"C\" int pf_probe()\n{\n"
                             "  std::thread t([] {});\n"
                             "  t.join();\n"
                             "  return 0;\n}\n";
    for (const auto &c : candidates) {
        if (probeCompile("probe.cc", code,
                         c + " -O1 -fPIC -shared -pthread")) {
            path = c;
            break;
        }
    }
    return path;
}

/** The fully-parallel band ids of @p bands (empty without proof). */
std::set<int>
fullyParallelBands(const std::vector<deps::TileBandGraph> *bands)
{
    std::set<int> out;
    if (bands)
        for (const auto &b : *bands)
            if (b.cls == deps::TileBandClass::FullyParallel)
                out.insert(b.bandId);
    return out;
}

/** Top-level (not under any For/Alloc) level-0 tile loops whose
 *  band is proven fully parallel -- the loops a tile-team can
 *  legally cover. */
unsigned
countEligibleRegions(const AstPtr &n, const std::set<int> &par_bands)
{
    if (!n)
        return 0;
    if (n->kind == AstKind::For)
        return n->tileLoop && n->bandLevel == 0 &&
                       par_bands.count(n->bandId) != 0
                   ? 1
                   : 0;
    if (n->kind != AstKind::Block)
        return 0;
    unsigned count = 0;
    for (const auto &c : n->children)
        count += countEligibleRegions(c, par_bands);
    return count;
}

} // namespace

const char *
nativeParModeName(NativeParMode mode)
{
    switch (mode) {
      case NativeParMode::Seq: return "seq";
      case NativeParMode::Omp: return "omp";
      case NativeParMode::Threads: return "threads";
    }
    return "seq";
}

std::string
emitNativeSource(const Program &program, const AstPtr &ast,
                 NativeParMode mode, unsigned threads,
                 const std::vector<deps::TileBandGraph> *bands,
                 unsigned *regions_parallel,
                 unsigned *regions_sequential)
{
    Emitter em(program, mode, threads == 0 ? 1 : threads, bands);
    std::string code = em.run(ast);
    if (regions_parallel)
        *regions_parallel = em.regionsParallel();
    if (regions_sequential)
        *regions_sequential = em.regionsSequential();
    return code;
}

struct NativeKernel::Handle
{
    void *dl = nullptr;
    void (*fn)(double **) = nullptr;

    ~Handle()
    {
        if (dl)
            dlclose(dl);
    }
};

bool
NativeKernel::toolchainAvailable()
{
    return !compilerPath().empty();
}

NativeParMode
NativeKernel::parallelToolchain()
{
    if (ompAvailable())
        return NativeParMode::Omp;
    if (!cxxCompilerPath().empty())
        return NativeParMode::Threads;
    return NativeParMode::Seq;
}

NativeKernel
NativeKernel::compile(const Program &program, const AstPtr &ast)
{
    return compile(program, ast, NativeOptions{});
}

NativeKernel
NativeKernel::compile(const Program &program, const AstPtr &ast,
                      const NativeOptions &options)
{
    NativeKernel k;

    // Resolve the parallel request to an emission mode *before*
    // anything is emitted or forked: a degraded request still
    // compiles (sequentially) with parReason() saying why.
    NativeParMode mode = NativeParMode::Seq;
    unsigned nt = 1;
    if (options.par != ParStrategy::Off) {
        std::set<int> par_bands =
            fullyParallelBands(options.tileBands);
        nt = options.threads ? options.threads
                             : std::thread::hardware_concurrency();
        if (nt == 0)
            nt = 1;
        if (par_bands.empty()) {
            k.par_reason_ = "no fully-parallel tile bands";
        } else if (countEligibleRegions(ast, par_bands) == 0) {
            k.par_reason_ =
                "no top-level tile loop of a fully-parallel band";
        } else if (nt <= 1) {
            k.par_reason_ = "tile-team of one thread runs "
                            "sequentially";
        } else {
            mode = parallelToolchain();
            if (mode == NativeParMode::Seq)
                k.par_reason_ = "no parallel toolchain (neither "
                                "-fopenmp nor a C++ compiler)";
        }
        if (mode == NativeParMode::Seq)
            nt = 1;
    }
    k.par_mode_ = mode;
    k.threads_ = nt;

    try {
        failpoints::hit("exec.native.compile");
        const std::string &cc = mode == NativeParMode::Threads
                                    ? cxxCompilerPath()
                                    : compilerPath();
        if (cc.empty()) {
            // Permanent: no toolchain will appear between retries.
            k.reason_ = "no C compiler found (cc/gcc/clang)";
            return k;
        }
        // Everything past the toolchain probe can fail transiently
        // (full /tmp, a flaky cc fork, dlopen under memory
        // pressure); this site lets tests force exactly that class.
        failpoints::hit("exec.native.transient");

        char tmpl[] = "/tmp/pf_native_XXXXXX";
        if (!mkdtemp(tmpl)) {
            k.reason_ = "mkdtemp failed";
            k.transient_ = true;
            return k;
        }
        std::string dir = tmpl;
        std::string src_path =
            dir + (mode == NativeParMode::Threads ? "/kernel.cc"
                                                  : "/kernel.c");
        std::string so_path = dir + "/kernel.so";
        auto cleanup = [&]() {
            std::remove(src_path.c_str());
            std::remove(so_path.c_str());
            rmdir(dir.c_str());
        };

        {
            std::ofstream src(src_path);
            src << emitNativeSource(program, ast, mode, nt,
                                    options.tileBands,
                                    &k.regions_parallel_,
                                    &k.regions_sequential_);
            if (!src) {
                k.reason_ = "failed to write " + src_path;
                k.transient_ = true;
                cleanup();
                return k;
            }
        }

        // -ffp-contract=off: the interpreter never fuses a*b+c, so
        // the native kernel must not either (bit-exactness).
        std::string cmd = cc + " -O2 -fPIC -shared" +
                          " -ffp-contract=off";
        if (mode == NativeParMode::Omp)
            cmd += " -fopenmp";
        cmd += " -o " + so_path + " " + src_path + " -lm";
        if (mode == NativeParMode::Threads)
            cmd += " -pthread";
        cmd += " > /dev/null 2>&1";
        if (std::system(cmd.c_str()) != 0) {
            k.reason_ = "native compile failed (" + cc + ")";
            k.transient_ = true;
            cleanup();
            return k;
        }

        failpoints::hit("exec.native.dlopen");
        // An OpenMP kernel pulls libgomp in as a dependency; if
        // this process does not link libgomp itself, dlclosing the
        // last such kernel unmaps the runtime under its parked
        // worker threads, which then wake into unmapped code.
        // RTLD_NODELETE pins the kernel (and thus its libgomp
        // reference) for the life of the process -- bounded by the
        // number of distinct compiled kernels.
        int dl_flags = RTLD_NOW | RTLD_LOCAL;
        if (mode == NativeParMode::Omp)
            dl_flags |= RTLD_NODELETE;
        void *dl = dlopen(so_path.c_str(), dl_flags);
        if (!dl) {
            const char *err = dlerror();
            k.reason_ = std::string("dlopen failed: ") +
                        (err ? err : "unknown");
            k.transient_ = true;
            cleanup();
            return k;
        }
        auto handle = std::make_shared<Handle>();
        handle->dl = dl;
        handle->fn = reinterpret_cast<void (*)(double **)>(
            dlsym(dl, "pf_kernel"));
        // The object stays mapped; the files can go away now.
        cleanup();
        if (!handle->fn) {
            // Permanent: the emitted source is wrong, not the
            // environment; recompiling yields the same object.
            k.reason_ = "pf_kernel symbol missing";
            return k;
        }
        k.handle_ = std::move(handle);
        k.reason_.clear();
        k.transient_ = false;
    } catch (const std::exception &e) {
        // An exception out of the compile/load machinery (including
        // an armed failpoint) is environmental as far as this layer
        // can tell: classify transient so callers retry then
        // degrade, never crash.
        k.handle_.reset();
        k.reason_ = std::string("native tier failed: ") + e.what();
        k.transient_ = true;
    }
    return k;
}

ExecStats
NativeKernel::run(Buffers &buffers) const
{
    if (!ok())
        fatal("native kernel not runnable: " + reason_);
    std::vector<double *> bufs;
    for (size_t t = 0; t < buffers.numTensors(); ++t)
        bufs.push_back(buffers.data(int(t)).data());
    ExecStats stats;
    Timer timer;
    handle_->fn(bufs.data());
    stats.seconds = timer.seconds();
    return stats;
}

} // namespace exec
} // namespace polyfuse
