#include "exec/engine.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "exec/bytecode.hh"
#include "exec/native.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace exec {

const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::Interp: return "interp";
      case Tier::Bytecode: return "bytecode";
      case Tier::Native: return "native";
    }
    return "?";
}

bool
parseTier(const std::string &text, Tier *out)
{
    if (text == "interp")
        *out = Tier::Interp;
    else if (text == "bytecode")
        *out = Tier::Bytecode;
    else if (text == "native")
        *out = Tier::Native;
    else
        return false;
    return true;
}

const char *
parStrategyName(ParStrategy strategy)
{
    switch (strategy) {
      case ParStrategy::Off: return "off";
      case ParStrategy::Static: return "static";
      case ParStrategy::Graph: return "graph";
    }
    return "?";
}

bool
parseParStrategy(const std::string &text, ParStrategy *out)
{
    if (text == "off")
        *out = ParStrategy::Off;
    else if (text == "static")
        *out = ParStrategy::Static;
    else if (text == "graph")
        *out = ParStrategy::Graph;
    else
        return false;
    return true;
}

const char *
simdModeName(SimdMode mode)
{
    switch (mode) {
      case SimdMode::Off: return "off";
      case SimdMode::On: return "on";
    }
    return "?";
}

bool
parseSimdMode(const std::string &text, SimdMode *out)
{
    if (text == "off")
        *out = SimdMode::Off;
    else if (text == "on")
        *out = SimdMode::On;
    else
        return false;
    return true;
}

namespace {

ExecStats
runBytecode(const ir::Program &program, const codegen::AstPtr &ast,
            Buffers &buffers, const ExecOptions &options,
            SimdMode simd, std::string *simd_fallback)
{
    BytecodeKernel kernel = BytecodeKernel::compile(program, ast);
    if (options.sink)
        return kernel.run(buffers, *options.sink);
    if (options.trace)
        return kernel.run(buffers, options.trace);
    return kernel.run(buffers, simd, simd_fallback);
}

} // namespace

ExecResult
execute(const ir::Program &program, const codegen::AstPtr &ast,
        Buffers &buffers, const ExecOptions &options)
{
    ExecResult result;
    Tier tier = options.tier;
    bool tracing = options.sink || options.trace;
    bool want_par = options.par != ParStrategy::Off;

    if (tier == Tier::Native && tracing) {
        if (!options.allowFallback)
            fatal("native tier cannot emit traces");
        result.fallbackReason = "tracing needs an instrumented tier";
        tier = Tier::Bytecode;
    }

    if (tier == Tier::Native) {
        NativeKernel kernel;
        if (want_par) {
            // The parallel-native ladder: parallel compile ->
            // sequential native -> bytecode, each step with the
            // reason recorded, and every decision taken before
            // anything executes (the same
            // planning-before-execution contract runParallel
            // keeps).
            bool planned = true;
            std::string par_reason;
            try {
                failpoints::hit("exec.native.par.spawn");
            } catch (const std::exception &e) {
                planned = false;
                par_reason = e.what();
            }
            if (planned) {
                NativeOptions nopts;
                nopts.par = options.par;
                nopts.threads = options.threads;
                nopts.tileBands = options.tileBands;
                kernel = NativeKernel::compile(program, ast, nopts);
                if (!kernel.ok())
                    par_reason = kernel.reason();
            }
            if (!kernel.ok()) {
                kernel = NativeKernel::compile(program, ast);
                if (kernel.ok())
                    result.parFallbackReason = par_reason;
            } else if (kernel.parMode() == NativeParMode::Seq) {
                result.parFallbackReason = kernel.parReason();
            } else {
                result.par.threads = kernel.threads();
                result.par.strategy = options.par;
                result.par.regionsParallel =
                    kernel.regionsParallel();
                result.par.regionsSequential =
                    kernel.regionsSequential();
                result.par.criticalPath =
                    kernel.regionsParallel() ? 1 : 0;
            }
        } else {
            kernel = NativeKernel::compile(program, ast);
        }
        if (kernel.ok()) {
            if (options.simd == SimdMode::On)
                result.simdFallbackReason = "native tier relies on "
                                            "compiler "
                                            "auto-vectorization";
            result.stats = kernel.run(buffers);
            result.tier = Tier::Native;
            return result;
        }
        if (!options.allowFallback)
            fatal("native tier unavailable: " + kernel.reason());
        result.fallbackReason = kernel.reason();
        result.par = ParRunStats{};
        tier = Tier::Bytecode;
    }

    if (tier == Tier::Bytecode) {
        if (want_par && tracing) {
            result.parFallbackReason =
                "tracing requires sequential execution";
            want_par = false;
        }
        SimdMode simd = options.simd;
        if (simd == SimdMode::On && tracing) {
            result.simdFallbackReason =
                "tracing requires scalar execution";
            simd = SimdMode::Off;
        }
        if (want_par) {
            BytecodeKernel kernel =
                BytecodeKernel::compile(program, ast);
            result.stats = kernel.runParallel(
                buffers, options.threads, options.par,
                options.tileBands, result.par,
                result.parFallbackReason, simd,
                &result.simdFallbackReason);
        } else {
            result.stats = runBytecode(program, ast, buffers,
                                       options, simd,
                                       &result.simdFallbackReason);
        }
        if (options.simd == SimdMode::On &&
            result.simdFallbackReason.empty())
            result.simd = SimdMode::On;
        result.tier = Tier::Bytecode;
        return result;
    }

    if (options.simd == SimdMode::On)
        result.simdFallbackReason =
            "simd fast path needs the bytecode tier";

    if (options.sink) {
        TraceSink &sink = *options.sink;
        TraceHook hook = [&sink](int space, int64_t off, bool w) {
            TraceRecord r{off, int32_t(space),
                          uint8_t(w ? 1 : 0)};
            sink.onRecords(&r, 1);
        };
        result.stats = run(program, ast, buffers, hook);
    } else {
        result.stats = run(program, ast, buffers, options.trace);
    }
    result.tier = Tier::Interp;
    return result;
}

const std::vector<BackendSpec> &
backendRegistry()
{
    // Every entry promises bit-identity: the native emitters pin
    // `-ffp-contract=off` and the guarded scalar forms, parallel
    // tiles write disjoint footprints in program order, and the
    // vector path applies the exact scalar op sequence per lane.
    // A future backend that reassociates (e.g. vectorized
    // reductions) registers with bitIdentical = false and a
    // maxAbsResidual bound instead; the sweep then checks the bound
    // and reports the measured deviation.
    static const std::vector<BackendSpec> registry = {
        {"interp", Tier::Interp, ParStrategy::Off, 1,
         SimdMode::Off, true, 0.0},
        {"bytecode", Tier::Bytecode, ParStrategy::Off, 1,
         SimdMode::Off, true, 0.0},
        {"bytecode-simd", Tier::Bytecode, ParStrategy::Off, 1,
         SimdMode::On, true, 0.0},
        {"bytecode-par2", Tier::Bytecode, ParStrategy::Static, 2,
         SimdMode::Off, true, 0.0},
        {"bytecode-par4", Tier::Bytecode, ParStrategy::Static, 4,
         SimdMode::Off, true, 0.0},
        {"bytecode-graph2", Tier::Bytecode, ParStrategy::Graph, 2,
         SimdMode::Off, true, 0.0},
        {"bytecode-graph4", Tier::Bytecode, ParStrategy::Graph, 4,
         SimdMode::Off, true, 0.0},
        {"bytecode-par4-simd", Tier::Bytecode, ParStrategy::Static,
         4, SimdMode::On, true, 0.0},
        {"native", Tier::Native, ParStrategy::Off, 1, SimdMode::Off,
         true, 0.0},
        {"native-par2", Tier::Native, ParStrategy::Static, 2,
         SimdMode::Off, true, 0.0},
        {"native-par4", Tier::Native, ParStrategy::Static, 4,
         SimdMode::Off, true, 0.0},
    };
    return registry;
}

const BackendSpec *
findBackend(const std::string &name)
{
    for (const auto &spec : backendRegistry())
        if (name == spec.name)
            return &spec;
    return nullptr;
}

ExecOptions
backendOptions(const BackendSpec &spec)
{
    ExecOptions options;
    options.tier = spec.tier;
    options.par = spec.par;
    options.threads = spec.threads;
    options.simd = spec.simd;
    return options;
}

namespace {

/** Map double bits onto an ordering where adjacent representable
 *  values differ by 1 (sign-magnitude flipped into a total order),
 *  so ulp distance is plain integer subtraction. */
uint64_t
orderedKey(uint64_t bits)
{
    return bits >> 63 ? ~bits : bits | (uint64_t(1) << 63);
}

} // namespace

BufferDeviation
bufferDeviation(const ir::Program &program, const Buffers &ref,
                const Buffers &got)
{
    BufferDeviation dev;
    for (size_t t = 0; t < program.tensors().size(); ++t) {
        const auto &a = ref.data(int(t));
        const auto &b = got.data(int(t));
        size_t n = std::min(a.size(), b.size());
        for (size_t i = 0; i < n; ++i) {
            uint64_t ba, bb;
            std::memcpy(&ba, &a[i], sizeof(ba));
            std::memcpy(&bb, &b[i], sizeof(bb));
            if (ba == bb)
                continue;
            dev.bitIdentical = false;
            bool na = std::isnan(a[i]), nb = std::isnan(b[i]);
            if (na != nb) {
                dev.maxAbs =
                    std::numeric_limits<double>::infinity();
                dev.maxUlp = std::numeric_limits<uint64_t>::max();
                continue;
            }
            if (na && nb)
                continue; // both NaN; payloads don't matter
            double d = std::fabs(a[i] - b[i]);
            if (d > dev.maxAbs)
                dev.maxAbs = d;
            uint64_t ka = orderedKey(ba), kb = orderedKey(bb);
            uint64_t ulp = ka > kb ? ka - kb : kb - ka;
            if (ulp > dev.maxUlp)
                dev.maxUlp = ulp;
        }
    }
    return dev;
}

} // namespace exec
} // namespace polyfuse
