#include "exec/engine.hh"

#include "exec/bytecode.hh"
#include "exec/native.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace exec {

const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::Interp: return "interp";
      case Tier::Bytecode: return "bytecode";
      case Tier::Native: return "native";
    }
    return "?";
}

bool
parseTier(const std::string &text, Tier *out)
{
    if (text == "interp")
        *out = Tier::Interp;
    else if (text == "bytecode")
        *out = Tier::Bytecode;
    else if (text == "native")
        *out = Tier::Native;
    else
        return false;
    return true;
}

const char *
parStrategyName(ParStrategy strategy)
{
    switch (strategy) {
      case ParStrategy::Off: return "off";
      case ParStrategy::Static: return "static";
      case ParStrategy::Graph: return "graph";
    }
    return "?";
}

bool
parseParStrategy(const std::string &text, ParStrategy *out)
{
    if (text == "off")
        *out = ParStrategy::Off;
    else if (text == "static")
        *out = ParStrategy::Static;
    else if (text == "graph")
        *out = ParStrategy::Graph;
    else
        return false;
    return true;
}

namespace {

ExecStats
runBytecode(const ir::Program &program, const codegen::AstPtr &ast,
            Buffers &buffers, const ExecOptions &options)
{
    BytecodeKernel kernel = BytecodeKernel::compile(program, ast);
    if (options.sink)
        return kernel.run(buffers, *options.sink);
    if (options.trace)
        return kernel.run(buffers, options.trace);
    return kernel.run(buffers);
}

} // namespace

ExecResult
execute(const ir::Program &program, const codegen::AstPtr &ast,
        Buffers &buffers, const ExecOptions &options)
{
    ExecResult result;
    Tier tier = options.tier;
    bool tracing = options.sink || options.trace;
    bool want_par = options.par != ParStrategy::Off;

    if (tier == Tier::Native && tracing) {
        if (!options.allowFallback)
            fatal("native tier cannot emit traces");
        result.fallbackReason = "tracing needs an instrumented tier";
        tier = Tier::Bytecode;
    }

    if (tier == Tier::Native) {
        NativeKernel kernel = NativeKernel::compile(program, ast);
        if (kernel.ok()) {
            if (want_par)
                result.parFallbackReason =
                    "native tier runs sequentially";
            result.stats = kernel.run(buffers);
            result.tier = Tier::Native;
            return result;
        }
        if (!options.allowFallback)
            fatal("native tier unavailable: " + kernel.reason());
        result.fallbackReason = kernel.reason();
        tier = Tier::Bytecode;
    }

    if (tier == Tier::Bytecode) {
        if (want_par && tracing) {
            result.parFallbackReason =
                "tracing requires sequential execution";
            want_par = false;
        }
        if (want_par) {
            BytecodeKernel kernel =
                BytecodeKernel::compile(program, ast);
            result.stats = kernel.runParallel(
                buffers, options.threads, options.par,
                options.tileBands, result.par,
                result.parFallbackReason);
            result.tier = Tier::Bytecode;
            return result;
        }
        result.stats = runBytecode(program, ast, buffers, options);
        result.tier = Tier::Bytecode;
        return result;
    }

    if (options.sink) {
        TraceSink &sink = *options.sink;
        TraceHook hook = [&sink](int space, int64_t off, bool w) {
            TraceRecord r{off, int32_t(space),
                          uint8_t(w ? 1 : 0)};
            sink.onRecords(&r, 1);
        };
        result.stats = run(program, ast, buffers, hook);
    } else {
        result.stats = run(program, ast, buffers, options.trace);
    }
    result.tier = Tier::Interp;
    return result;
}

} // namespace exec
} // namespace polyfuse
