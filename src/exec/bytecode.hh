/**
 * @file
 * Tier-1 execution: the generated AST compiled once into a flat
 * bytecode tape, then run by a branch-light dispatch loop.
 *
 * What the compilation hoists out of the per-access hot path:
 *
 *  - Access functions. Every affine access row (over statement
 *    dimensions, access parameters and a constant) is composed with
 *    the statement's loop-variable bindings and the program's fixed
 *    parameter values at compile time, then *folded with the active
 *    storage's row-major strides* into a single sparse linear form
 *    `offset = c + sum(coef_i * var_slot_i)`. A scalar access costs
 *    a few multiply-adds instead of a recursive Expr walk plus an
 *    index-vector materialization and a bounds-checked offsetOf.
 *    When a scratchpad promotion activates (Alloc scope entry/exit)
 *    only the affected tensors' folds are recomputed -- once per
 *    tile, not per access.
 *
 *  - Loop descriptors. Bounds are precompiled min/max trees over
 *    sparse terms with parameter coefficients already folded into
 *    the constants; loops evaluate them once at entry.
 *
 *  - Statement bodies. Expr trees flatten to a postfix tape run on a
 *    value stack of precomputed depth; guards become sparse dot
 *    products.
 *
 *  - Trace emission. The run loop is instantiated twice (traced /
 *    untraced), so the untraced path carries no trace branches at
 *    all, and the traced path appends fixed-size records to a batch
 *    buffer flushed to a TraceSink (see exec/trace.hh).
 *
 * The kernel is immutable after compile() and safe to run from
 * several threads at once (each run carries its own machine state).
 * Semantics are differentially tested to be bit-identical to the
 * reference interpreter (tests/test_exec.cc).
 */

#ifndef POLYFUSE_EXEC_BYTECODE_HH
#define POLYFUSE_EXEC_BYTECODE_HH

#include <memory>

#include "exec/engine.hh"
#include "exec/executor.hh"

namespace polyfuse {
namespace exec {

namespace bytecode_detail {
struct Image;
}

/** A compiled program: AST + program lowered to a bytecode tape. */
class BytecodeKernel
{
  public:
    /** An empty (not runnable) kernel; use compile(). */
    BytecodeKernel() = default;

    /**
     * Lower @p ast (generated for @p program) to bytecode. The
     * program must outlive the kernel. Throws FatalError on AST
     * shapes the executor does not support either (e.g. non-affine
     * writes).
     */
    static BytecodeKernel compile(const ir::Program &program,
                                  const codegen::AstPtr &ast);

    bool ok() const { return image_ != nullptr; }

    /**
     * Execute without tracing (the fast path). With
     * SimdMode::On, single-statement inner loops whose per-run
     * dependence check passes execute in compiler-vectorizable
     * lane blocks with a scalar tail -- still bit-identical to
     * scalar execution (each lane applies the exact scalar op
     * sequence; no reassociation). A failed SIMD admission (the
     * exec.simd.select failpoint) degrades the run to scalar and
     * records why in @p simd_fallback.
     */
    ExecStats run(Buffers &buffers, SimdMode simd = SimdMode::Off,
                  std::string *simd_fallback = nullptr) const;

    /** Execute, streaming batched trace records into @p sink. */
    ExecStats run(Buffers &buffers, TraceSink &sink) const;

    /** Adapter: per-access hook consumers (legacy signature). */
    ExecStats run(Buffers &buffers, const TraceHook &hook) const;

    /**
     * Execute with up to @p threads workers scheduling the tape's
     * tile regions per @p strategy, gated by the @p bands
     * classifications (see ParStrategy). Untraced only. Guaranteed
     * bit-identical to run(): identical buffers and identical stats
     * (except wall-clock seconds).
     *
     * Planning -- the exec.par.spawn / exec.par.tilegraph failpoint
     * sites, tile enumeration, DAG construction, worker spawn --
     * happens strictly before any statement executes; a planning
     * failure is recorded in @p fallback_reason and the whole tape
     * runs sequentially instead (buffers untouched at that point, so
     * the degrade is deterministic). A failure while tiles are
     * already executing propagates as the error it is.
     */
    ExecStats runParallel(Buffers &buffers, unsigned threads,
                          ParStrategy strategy,
                          const std::vector<deps::TileBandGraph> *bands,
                          ParRunStats &par,
                          std::string &fallback_reason,
                          SimdMode simd = SimdMode::Off,
                          std::string *simd_fallback = nullptr) const;

    /** Parallel-schedulable top-level tile regions of the tape. */
    size_t numTileRegions() const;

    /** Tape length (for tests and stats). */
    size_t numInstructions() const;

    /** Compiled statement-node count (for tests and stats). */
    size_t numStatements() const;

  private:
    explicit BytecodeKernel(
        std::shared_ptr<const bytecode_detail::Image> image)
        : image_(std::move(image)) {}

    std::shared_ptr<const bytecode_detail::Image> image_;
};

} // namespace exec
} // namespace polyfuse

#endif // POLYFUSE_EXEC_BYTECODE_HH
