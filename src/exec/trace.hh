/**
 * @file
 * Batched memory-trace plumbing shared by the execution tiers and
 * the cache simulator.
 *
 * The original TraceHook (std::function called once per scalar
 * access) costs an indirect call plus argument marshalling on every
 * access -- measurable when the cache simulation consumes hundreds
 * of millions of records. The bytecode tier instead appends fixed
 * 16-byte TraceRecords to an in-kernel buffer and hands full batches
 * to a TraceSink, so the per-access cost is one store plus a counter
 * bump and the indirect call amortizes over kTraceBatch records.
 *
 * HookSink adapts the old per-access hook signature onto the batched
 * interface, so existing consumers keep working unchanged.
 */

#ifndef POLYFUSE_EXEC_TRACE_HH
#define POLYFUSE_EXEC_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <functional>

namespace polyfuse {
namespace exec {

/** One scalar access: space id (tensor, or numTensors + tensor for
 *  a promoted scratchpad), element offset, and direction. */
struct TraceRecord
{
    int64_t offset = 0;
    int32_t space = 0;
    uint8_t isWrite = 0;
};

/** Records per batch handed to a TraceSink. */
constexpr size_t kTraceBatch = 4096;

/** Consumer of batched trace records (delivered in program order). */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called with @p n > 0 records in execution order. */
    virtual void onRecords(const TraceRecord *records, size_t n) = 0;
};

/**
 * Memory-trace hook: called per scalar access. Kept as the adapter
 * signature for consumers that want one callback per access.
 */
using TraceHook =
    std::function<void(int space, int64_t offset, bool is_write)>;

/** Adapter: replays each batched record into a per-access hook. */
class HookSink final : public TraceSink
{
  public:
    explicit HookSink(const TraceHook &hook) : hook_(hook) {}

    void
    onRecords(const TraceRecord *records, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            hook_(records[i].space, records[i].offset,
                  records[i].isWrite != 0);
    }

  private:
    const TraceHook &hook_;
};

} // namespace exec
} // namespace polyfuse

#endif // POLYFUSE_EXEC_TRACE_HH
