/**
 * @file
 * The process-wide kernel cache: compiled kernels as immutable,
 * fingerprint-addressable artifacts shared across requests, threads
 * and (via the driver's KernelArtifact wrapper) pipeline runs.
 *
 * A KernelImage freezes everything the executor needs to run a
 * compiled program on any tier: the owning ir::Program, the generated
 * AST, the per-band GeneratedBand markers, the TileGraph
 * classifications, the pre-lowered BytecodeKernel, and a lazily
 * compiled+dlopen'ed native kernel. Images are immutable after
 * construction (the native slot is a mutex-guarded memo, compiled at
 * most once), so one image can execute concurrently from any number
 * of threads -- the property PR 5 established for BytecodeKernel,
 * extended to the whole artifact.
 *
 * KernelCache shards a byte-capacity LRU (support/lru.hh, the same
 * policy as the Presburger op cache) over the 128-bit program
 * fingerprints of driver::programFingerprint. A hit returns a
 * shared_ptr, so an image stays alive while in use even if evicted
 * concurrently. Hit/miss/insertion/eviction/latency counters surface
 * through PassStats and `--emit json`; executing a cached workload
 * skips the entire Presburger/codegen pipeline.
 */

#ifndef POLYFUSE_EXEC_KERNEL_CACHE_HH
#define POLYFUSE_EXEC_KERNEL_CACHE_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "codegen/generate.hh"
#include "deps/tile_graph.hh"
#include "exec/bytecode.hh"
#include "exec/engine.hh"
#include "exec/native.hh"
#include "ir/program.hh"
#include "pres/fingerprint.hh"
#include "support/lru.hh"

namespace polyfuse {
namespace exec {

/** Everything needed to execute one compiled program, frozen. */
struct KernelImage
{
    /** Owns the program: cached kernels outlive the compiling call. */
    std::shared_ptr<const ir::Program> program;
    codegen::AstPtr ast;
    std::vector<codegen::GeneratedBand> genBands;
    std::vector<deps::TileBandGraph> tileBands;
    BytecodeKernel bytecode;
    /** Estimated resident bytes (LRU weight); see
     *  estimateImageBytes. */
    uint64_t bytes = 0;

    /**
     * The native-tier kernel, compiled+dlopen'ed on first request
     * (thread-safe). Success and *permanent* failures (no toolchain,
     * missing symbol) are memoized; *transient* failures (flaky cc,
     * failed dlopen, full /tmp) are not, so a later call -- e.g. the
     * compile service's retry-with-backoff -- re-attempts the
     * compile. @return null when the native tier is unavailable,
     * with the reason in @p reason and the transient/permanent
     * classification in @p transient (each when non-null).
     */
    const NativeKernel *ensureNative(std::string *reason = nullptr,
                                     bool *transient = nullptr)
        const;

    /**
     * The native kernel compiled for @p options' backend shape
     * (sequential vs tile-team, and the resolved team size). Each
     * distinct shape memoizes in its own slot, so a warm image can
     * never serve a kernel compiled for a different backend.
     * options.tileBands defaults to the image's own classifications.
     */
    const NativeKernel *ensureNative(const NativeOptions &options,
                                     std::string *reason,
                                     bool *transient = nullptr) const;

  private:
    /** One memoized native compile per backend shape. */
    struct NativeSlot
    {
        bool parallel = false;
        unsigned threads = 1; ///< resolved team size
        NativeKernel kernel;
        bool tried = false;
    };

    /** unique_ptr keeps returned kernel pointers stable while the
     *  slot list grows under concurrent backend requests. */
    mutable std::mutex nativeMu_;
    mutable std::vector<std::unique_ptr<NativeSlot>> nativeSlots_;
};

/** Rough resident-byte estimate of @p image for LRU weighting. */
uint64_t estimateImageBytes(const KernelImage &image);

/**
 * Execute a frozen image over @p buffers. Same tier dispatch and
 * fallback semantics as exec::execute(program, ast, ...), but reuses
 * the image's pre-compiled bytecode and memoized native kernel
 * instead of recompiling, and defaults ExecOptions::tileBands to the
 * image's own classifications.
 */
ExecResult execute(const KernelImage &image, Buffers &buffers,
                   const ExecOptions &options = {});

/** Process-wide, thread-safe, sharded LRU over kernel images. */
class KernelCache
{
  public:
    /** Aggregate lifetime counters (monotonic; clear() resets none
     *  of them, matching OpCache::Stats semantics). */
    struct Counters
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
        uint64_t lookupNs = 0; ///< total time spent in find()
    };

    static constexpr uint64_t kDefaultCapacityBytes =
        256ull * 1024 * 1024;
    static constexpr unsigned kDefaultShards = 8;

    explicit KernelCache(
        uint64_t capacity_bytes = kDefaultCapacityBytes,
        unsigned shards = kDefaultShards);

    /** Look up @p fp; a hit bumps recency and returns a strong
     *  reference (safe to keep across concurrent evictions). */
    std::shared_ptr<const KernelImage>
    find(const pres::Fingerprint &fp);

    /** Insert (or overwrite) @p image under @p fp; weight is
     *  image->bytes (estimated when zero). */
    void insert(const pres::Fingerprint &fp,
                std::shared_ptr<const KernelImage> image);

    /** Drop every entry (not counted as evictions). */
    void clear();

    /** Re-split @p bytes evenly over the shards, evicting to fit. */
    void setCapacityBytes(uint64_t bytes);

    uint64_t capacityBytes() const;

    Counters counters() const;

    size_t entries() const;

    /** Sum of resident image weights. */
    uint64_t bytes() const;

    /** The process-wide instance shared by every thread. */
    static KernelCache &process();

  private:
    struct Shard
    {
        mutable std::mutex mu;
        LruMap<pres::Fingerprint, std::shared_ptr<const KernelImage>,
               pres::FingerprintHash>
            lru;
        Counters counters;

        explicit Shard(uint64_t capacity) : lru(capacity) {}
    };

    Shard &shardFor(const pres::Fingerprint &fp);

    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace exec
} // namespace polyfuse

#endif // POLYFUSE_EXEC_KERNEL_CACHE_HH
