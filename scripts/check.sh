#!/usr/bin/env bash
# Repo hygiene / verification driver.
#
#   scripts/check.sh               tier-1 verify (build + ctest) plus
#                                  the warnings-as-errors build and,
#                                  when the toolchain supports them,
#                                  the ThreadSanitizer and
#                                  AddressSanitizer runs
#   scripts/check.sh --werror-only only the -Werror configure + build
#                                  (this mode is wired as the
#                                  check_werror ctest, so it must never
#                                  invoke ctest itself)
#   scripts/check.sh --tsan-only   only the -fsanitize=thread build of
#                                  the concurrency-sensitive tests,
#                                  then run them directly (wired as the
#                                  check_tsan ctest; never invokes
#                                  ctest itself)
#   scripts/check.sh --asan-only   only the -fsanitize=address build of
#                                  the error-path-heavy tests, then run
#                                  them directly (wired as the
#                                  check_asan ctest; never invokes
#                                  ctest itself)
#   scripts/check.sh --ubsan-only  only the -fsanitize=undefined build
#                                  of the exec-layer tests (the SIMD
#                                  lane loops live there), then run
#                                  them directly (wired as the
#                                  check_ubsan ctest; never invokes
#                                  ctest itself)
#   scripts/check.sh --bench-only  build + run the perf baseline
#                                  (scripts/bench_to_json.sh), writing
#                                  BENCH_presburger.json,
#                                  BENCH_compile_time.json and
#                                  BENCH_runtime.json at the repo root
#
# All modes use their own build directories and leave ./build alone.
set -euo pipefail

src="${POLYFUSE_SOURCE_DIR:-$(cd "$(dirname "$0")/.." && pwd)}"
jobs="$(nproc 2>/dev/null || echo 4)"

werror_build() {
    echo "== configure + build with -Wall -Wextra -Werror =="
    cmake -B "$src/build-werror" -S "$src" -DPOLYFUSE_WERROR=ON
    cmake --build "$src/build-werror" -j "$jobs"
    echo "== -Werror build OK =="
}

# Can this toolchain compile, link and run the given sanitizer flag?
# (No RETURN trap here: one set inside a function persists globally
# and would fire on later returns where the local is out of scope,
# tripping set -u.)
sanitizer_supported() {
    local flag="$1" scratch ok=1
    scratch="$(mktemp -d)"
    echo 'int main() { return 0; }' > "$scratch/probe.cc"
    if "${CXX:-c++}" "$flag" -o "$scratch/probe" \
           "$scratch/probe.cc" >/dev/null 2>&1 &&
       "$scratch/probe" >/dev/null 2>&1; then
        ok=0
    fi
    rm -rf "$scratch"
    return "$ok"
}

tsan_supported() { sanitizer_supported -fsanitize=thread; }
asan_supported() { sanitizer_supported -fsanitize=address; }
ubsan_supported() { sanitizer_supported -fsanitize=undefined; }

# Build the re-entrancy-sensitive test binaries under TSAN and run
# them directly. Races in the batch/pool/pres-context machinery --
# in the tile-graph parallel executor (the *Parallel* subset of
# test_exec exercises the static and ready-queue paths at 2 and 8
# threads) -- in the backend registry's parallel paths (Backend*
# covers the bytecode-par/graph backends at 2 and 4 threads, the
# parallel-native ladder, and the simd-under-par differential; the
# registry-wide BackendSweep stays out, its pipeline compiles would
# blow the gate's budget under TSAN) -- and in the sharded
# KernelCache (the KernelCache subset of test_artifact hammers
# compile/lookup from 8 threads) -- and in the compile service's
# accept/reader/worker/drain machinery (the whole of test_service
# runs a live daemon with concurrent clients) -- show up here as
# hard failures.
tsan_build_and_run() {
    echo "== configure + build with -fsanitize=thread =="
    cmake -B "$src/build-tsan" -S "$src" -DPOLYFUSE_TSAN=ON
    cmake --build "$src/build-tsan" -j "$jobs" \
        --target test_driver test_concurrency test_robustness \
        test_exec test_artifact test_service
    echo "== run test_driver + test_concurrency + test_robustness" \
         "+ test_exec[*Parallel*:Backend*] +" \
         "test_artifact[KernelCache.*] + test_service under TSAN =="
    "$src/build-tsan/tests/test_driver"
    "$src/build-tsan/tests/test_concurrency"
    "$src/build-tsan/tests/test_robustness"
    "$src/build-tsan/tests/test_exec" \
        --gtest_filter='*Parallel*:Backend*'
    "$src/build-tsan/tests/test_artifact" \
        --gtest_filter='KernelCache.*'
    "$src/build-tsan/tests/test_service"
    echo "== TSAN run OK =="
}

# Build the error-path-heavy test binaries under ASAN and run them
# directly. Leaks or overflows on the budget/fallback/failpoint
# unwind paths — and on the bytecode VM's strength-reduced access
# offsets (tests/test_exec.cc) — and on the service's per-request
# error/shed/drain unwind paths (tests/test_service.cc) — and on the
# tuner's parallel batch evaluation and tuning-store parsing
# (tests/test_autotune.cc) — show up here as hard failures.
asan_build_and_run() {
    echo "== configure + build with -fsanitize=address =="
    cmake -B "$src/build-asan" -S "$src" -DPOLYFUSE_ASAN=ON
    cmake --build "$src/build-asan" -j "$jobs" \
        --target test_robustness test_pres_parser test_exec \
        test_service test_autotune
    echo "== run test_robustness + test_pres_parser + test_exec" \
         "+ test_service + test_autotune under ASAN =="
    "$src/build-asan/tests/test_robustness"
    "$src/build-asan/tests/test_pres_parser"
    "$src/build-asan/tests/test_exec"
    "$src/build-asan/tests/test_service"
    "$src/build-asan/tests/test_autotune"
    echo "== ASAN run OK =="
}

# Build the exec-layer tests under UBSan and run them directly. The
# SIMD block path steps raw element pointers through lane loops and
# strength-reduces access offsets; misaligned or out-of-range
# arithmetic there shows up here as a hard failure. The registry-wide
# BackendSweep is excluded: its per-workload native pipeline compiles
# add minutes without adding UB surface (the same lane loops run via
# the Backend* and differential tests that do stay in).
ubsan_build_and_run() {
    echo "== configure + build with -fsanitize=undefined =="
    cmake -B "$src/build-ubsan" -S "$src" -DPOLYFUSE_UBSAN=ON
    cmake --build "$src/build-ubsan" -j "$jobs" --target test_exec
    echo "== run test_exec (minus BackendSweep) under UBSan =="
    "$src/build-ubsan/tests/test_exec" \
        --gtest_filter='-*BackendSweep*'
    echo "== UBSan run OK =="
}

case "${1:-}" in
  --werror-only)
    werror_build
    exit 0
    ;;
  --tsan-only)
    if ! tsan_supported; then
        echo "TSAN not supported by this toolchain; skipping"
        exit 0
    fi
    tsan_build_and_run
    exit 0
    ;;
  --asan-only)
    if ! asan_supported; then
        echo "ASAN not supported by this toolchain; skipping"
        exit 0
    fi
    asan_build_and_run
    exit 0
    ;;
  --ubsan-only)
    if ! ubsan_supported; then
        echo "UBSan not supported by this toolchain; skipping"
        exit 0
    fi
    ubsan_build_and_run
    exit 0
    ;;
  --bench-only)
    "$src/scripts/bench_to_json.sh" "$src/build-bench"
    exit 0
    ;;
esac

echo "== tier-1 verify: build + ctest =="
cmake -B "$src/build-check" -S "$src"
cmake --build "$src/build-check" -j "$jobs"
(cd "$src/build-check" && ctest --output-on-failure -j "$jobs" \
    -E '^check_(werror|tsan|asan|ubsan)$')
werror_build
if tsan_supported; then
    tsan_build_and_run
else
    echo "== TSAN not supported by this toolchain; skipped =="
fi
if asan_supported; then
    asan_build_and_run
else
    echo "== ASAN not supported by this toolchain; skipped =="
fi
if ubsan_supported; then
    ubsan_build_and_run
else
    echo "== UBSan not supported by this toolchain; skipped =="
fi
echo "== all checks passed =="
