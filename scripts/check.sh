#!/usr/bin/env bash
# Repo hygiene / verification driver.
#
#   scripts/check.sh               tier-1 verify (build + ctest) plus
#                                  the warnings-as-errors build and,
#                                  when the toolchain supports it, the
#                                  ThreadSanitizer run
#   scripts/check.sh --werror-only only the -Werror configure + build
#                                  (this mode is wired as the
#                                  check_werror ctest, so it must never
#                                  invoke ctest itself)
#   scripts/check.sh --tsan-only   only the -fsanitize=thread build of
#                                  the concurrency-sensitive tests,
#                                  then run them directly (wired as the
#                                  check_tsan ctest; never invokes
#                                  ctest itself)
#
# All modes use their own build directories and leave ./build alone.
set -euo pipefail

src="${POLYFUSE_SOURCE_DIR:-$(cd "$(dirname "$0")/.." && pwd)}"
jobs="$(nproc 2>/dev/null || echo 4)"

werror_build() {
    echo "== configure + build with -Wall -Wextra -Werror =="
    cmake -B "$src/build-werror" -S "$src" -DPOLYFUSE_WERROR=ON
    cmake --build "$src/build-werror" -j "$jobs"
    echo "== -Werror build OK =="
}

# Can this toolchain compile, link and run -fsanitize=thread?
tsan_supported() {
    local scratch
    scratch="$(mktemp -d)"
    trap 'rm -rf "$scratch"' RETURN
    echo 'int main() { return 0; }' > "$scratch/probe.cc"
    "${CXX:-c++}" -fsanitize=thread -o "$scratch/probe" \
        "$scratch/probe.cc" >/dev/null 2>&1 &&
        "$scratch/probe" >/dev/null 2>&1
}

# Build the re-entrancy-sensitive test binaries under TSAN and run
# them directly. Races in the batch/pool/pres-context machinery show
# up here as hard failures.
tsan_build_and_run() {
    echo "== configure + build with -fsanitize=thread =="
    cmake -B "$src/build-tsan" -S "$src" -DPOLYFUSE_TSAN=ON
    cmake --build "$src/build-tsan" -j "$jobs" \
        --target test_driver test_concurrency
    echo "== run test_driver + test_concurrency under TSAN =="
    "$src/build-tsan/tests/test_driver"
    "$src/build-tsan/tests/test_concurrency"
    echo "== TSAN run OK =="
}

case "${1:-}" in
  --werror-only)
    werror_build
    exit 0
    ;;
  --tsan-only)
    if ! tsan_supported; then
        echo "TSAN not supported by this toolchain; skipping"
        exit 0
    fi
    tsan_build_and_run
    exit 0
    ;;
esac

echo "== tier-1 verify: build + ctest =="
cmake -B "$src/build-check" -S "$src"
cmake --build "$src/build-check" -j "$jobs"
(cd "$src/build-check" && ctest --output-on-failure -j "$jobs" \
    -E '^check_(werror|tsan)$')
werror_build
if tsan_supported; then
    tsan_build_and_run
else
    echo "== TSAN not supported by this toolchain; skipped =="
fi
echo "== all checks passed =="
