#!/usr/bin/env bash
# Repo hygiene / verification driver.
#
#   scripts/check.sh               tier-1 verify (build + ctest) plus
#                                  the warnings-as-errors build
#   scripts/check.sh --werror-only only the -Werror configure + build
#                                  (this mode is wired as the
#                                  check_werror ctest, so it must never
#                                  invoke ctest itself)
#
# Both modes use their own build directories and leave ./build alone.
set -euo pipefail

src="${POLYFUSE_SOURCE_DIR:-$(cd "$(dirname "$0")/.." && pwd)}"
jobs="$(nproc 2>/dev/null || echo 4)"

werror_build() {
    echo "== configure + build with -Wall -Wextra -Werror =="
    cmake -B "$src/build-werror" -S "$src" -DPOLYFUSE_WERROR=ON
    cmake --build "$src/build-werror" -j "$jobs"
    echo "== -Werror build OK =="
}

if [[ "${1:-}" == "--werror-only" ]]; then
    werror_build
    exit 0
fi

echo "== tier-1 verify: build + ctest =="
cmake -B "$src/build-check" -S "$src"
cmake --build "$src/build-check" -j "$jobs"
(cd "$src/build-check" && ctest --output-on-failure -j "$jobs" \
    -E '^check_werror$')
werror_build
echo "== all checks passed =="
