#!/usr/bin/env bash
# Machine-readable perf baseline: run the Presburger microbenchmarks
# and the registry-wide compile-time A/B sweep, writing
#
#   BENCH_presburger.json     microkernel ns/op + per-workload
#                             baseline/optimized wall-ms, FM work and
#                             cache hit rate
#   BENCH_compile_time.json   registry compile-time sweep at --jobs 1
#                             (the geomean-speedup trajectory number)
#   BENCH_runtime.json        execution-tier sweep: interpreter vs
#                             bytecode (vs native when a C toolchain
#                             is present), with bit-identical-buffer
#                             verdicts per workload
#   BENCH_cache.json          kernel-cache sweep: cache-off vs cold
#                             vs warm compile wall-ms per workload,
#                             warm-hit and bit-identical-buffer
#                             verdicts, plus process cache counters
#   BENCH_parallel.json       tile-graph parallel runtime: sequential
#                             vs 1/2/4/8-thread wall-ms and speedup
#                             per workload (static strategy on
#                             coincident bands, graph on the seidel
#                             wavefront), with tile counts, critical-
#                             path lengths and bit-identical-buffer
#                             verdicts; hardwareThreads records the
#                             machine's concurrency and singleCore
#                             whether speedup claims were withheld
#                             (one-core box)
#   BENCH_backends.json       backend registry sweep: per-workload
#                             latency and numerical deviation
#                             (maxAbs/maxUlp vs the interpreter) for
#                             every registered backend (tier x par x
#                             simd), with per-backend contract
#                             verdicts, simdWidth, hardwareThreads
#                             and the singleCore flag
#   BENCH_service.json        compile-service robustness baseline:
#                             p50/p95/p99 client-observed latency for
#                             warm compile+run and ping requests,
#                             mean queue wait, flood ok/shed split
#                             with recovery verdict, and the
#                             transient-native retry/degrade verdict
#   BENCH_autotune.json       tile-search sweep: exhaustive oracle vs
#                             model-guided per workload (candidates
#                             measured, wall-ms, modeled-quality gap),
#                             aggregate measured fraction and geomean
#                             search speedup, and the near-miss
#                             warm-start verdict
#
# at the repository root. All benches compare the optimized
# configuration (inline SmallVec rows + op cache) against the
# baseline (forced-heap rows, cache off) in the same process and exit
# nonzero when any workload's generated C differs — so this script
# doubles as a correctness gate.
#
#   scripts/bench_to_json.sh [build-dir]      default: ./build
#
# See README.md ("Perf baseline") for the JSON schema.
set -euo pipefail

src="${POLYFUSE_SOURCE_DIR:-$(cd "$(dirname "$0")/.." && pwd)}"
build="${1:-$src/build}"
jobs="$(nproc 2>/dev/null || echo 4)"

if [ ! -f "$build/CMakeCache.txt" ]; then
    cmake -B "$build" -S "$src"
fi
cmake --build "$build" -j "$jobs" \
    --target bench_presburger bench_compile_time bench_runtime \
    bench_parallel bench_backends bench_cache bench_service \
    bench_autotune

echo "== bench_presburger --json -> BENCH_presburger.json =="
"$build/bench/bench_presburger" --json > "$src/BENCH_presburger.json"
echo "== bench_compile_time --json -> BENCH_compile_time.json =="
"$build/bench/bench_compile_time" --json \
    > "$src/BENCH_compile_time.json"
echo "== bench_runtime --json -> BENCH_runtime.json =="
"$build/bench/bench_runtime" --json > "$src/BENCH_runtime.json"
echo "== bench_parallel --json -> BENCH_parallel.json =="
"$build/bench/bench_parallel" --json > "$src/BENCH_parallel.json"
echo "== bench_backends --json -> BENCH_backends.json =="
"$build/bench/bench_backends" --json > "$src/BENCH_backends.json"
echo "== bench_cache --json -> BENCH_cache.json =="
"$build/bench/bench_cache" --json > "$src/BENCH_cache.json"
echo "== bench_service --json -> BENCH_service.json =="
"$build/bench/bench_service" --json > "$src/BENCH_service.json"
echo "== bench_autotune --json -> BENCH_autotune.json =="
"$build/bench/bench_autotune" --json > "$src/BENCH_autotune.json"

# Surface the headline numbers; the benches already failed the
# script (set -e) on any generated-code or buffer mismatch.
grep -o '"geomeanSpeedup": [0-9.]*' "$src/BENCH_compile_time.json"
grep -o '"geomeanSpeedup": [0-9.]*' "$src/BENCH_runtime.json"
# Speedup claims are withheld on single-core machines; singleCore
# carries the verdict through either way.
grep -o '"geomeanSpeedup4": [0-9.]*' "$src/BENCH_parallel.json" \
    || true
grep -o '"singleCore": [a-z]*' "$src/BENCH_parallel.json"
grep -o '"singleCore": [a-z]*' "$src/BENCH_backends.json"
grep -o '"allWithinContract": [a-z]*' "$src/BENCH_backends.json"
grep -o '"geomeanWarmSpeedup": [0-9.]*' "$src/BENCH_cache.json"
grep -o '"compileP99Ms": [0-9.]*' "$src/BENCH_service.json"
grep -o '"geomeanSpeedup": [0-9.]*' "$src/BENCH_autotune.json"
grep -o '"allOk": [a-z]*' "$src/BENCH_autotune.json"
echo "== perf baseline written =="
