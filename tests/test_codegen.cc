/**
 * @file
 * Tests for AST generation and the C printers on the convolution
 * example: loop structure, tile/point loops, guards, promotion
 * scopes, and the pretty-printed code of Fig. 1(b)/Fig. 5. Every
 * schedule is produced by the driver's pass pipeline.
 */

#include <gtest/gtest.h>

#include "codegen/cprinter.hh"
#include "driver/pipeline.hh"
#include "workloads/conv2d.hh"

namespace polyfuse {
namespace codegen {
namespace {

class ConvCodegen : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prog_ = workloads::makeConv2D({6, 6, 3, 3});
    }

    /** Compile through the driver with the given strategy/tiles. */
    driver::CompilationState
    compile(driver::Strategy strategy, std::vector<int64_t> tiles,
            unsigned target_parallelism = 1)
    {
        driver::PipelineOptions opts;
        opts.strategy = strategy;
        opts.tileSizes = std::move(tiles);
        opts.targetParallelism = target_parallelism;
        return driver::Pipeline(opts).run(prog_);
    }

    ir::Program prog_;
};

/** Count AST nodes of a kind. */
unsigned
countNodes(const AstPtr &n, AstKind kind)
{
    if (!n)
        return 0;
    unsigned c = n->kind == kind ? 1 : 0;
    for (const auto &ch : n->children)
        c += countNodes(ch, kind);
    return c;
}

/** Maximum loop nest depth. */
unsigned
loopDepth(const AstPtr &n)
{
    if (!n)
        return 0;
    unsigned best = 0;
    for (const auto &c : n->children)
        best = std::max(best, loopDepth(c));
    return best + (n->kind == AstKind::For ? 1 : 0);
}

TEST_F(ConvCodegen, InitialTreeProducesThreeNests)
{
    AstPtr ast = compile(driver::Strategy::Naive, {}).ast;
    // S0: 2 loops; S1/S2: 2 + 2; S3: 2 -> 4 statements total.
    EXPECT_EQ(countNodes(ast, AstKind::Stmt), 4u);
    EXPECT_EQ(loopDepth(ast), 4u);
    EXPECT_EQ(countNodes(ast, AstKind::Alloc), 0u);
}

TEST_F(ConvCodegen, ComposedAstHasTilePointLoopsAndPromotion)
{
    AstPtr ast = compile(driver::Strategy::Ours, {2, 2}).ast;
    // Tile loops (2) + S0 copy loops + point loops + reduction loops.
    EXPECT_EQ(countNodes(ast, AstKind::Stmt), 4u);
    EXPECT_EQ(countNodes(ast, AstKind::Alloc), 1u);
    // Two tile loops at the top.
    unsigned tile_loops = 0;
    std::function<void(const AstPtr &)> walk =
        [&](const AstPtr &n) {
            if (n->kind == AstKind::For && n->tileLoop)
                ++tile_loops;
            for (const auto &c : n->children)
                walk(c);
        };
    walk(ast);
    EXPECT_EQ(tile_loops, 2u);
}

TEST_F(ConvCodegen, PromotionBoxMatchesFootprint)
{
    AstPtr ast = compile(driver::Strategy::Ours, {2, 2}).ast;
    // Find the Alloc node.
    AstPtr alloc;
    std::function<void(const AstPtr &)> walk =
        [&](const AstPtr &n) {
            if (n->kind == AstKind::Alloc)
                alloc = n;
            for (const auto &c : n->children)
                walk(c);
        };
    walk(ast);
    ASSERT_TRUE(alloc);
    ASSERT_EQ(alloc->promotions.size(), 1u);
    EXPECT_EQ(alloc->promotions[0].tensor, prog_.tensorId("A"));
    // Box per dim: KH + T2 - 1 = 4 points (checked at runtime by the
    // executor; here just verify the bounds exist per dim).
    EXPECT_EQ(alloc->promotions[0].boxLo.size(), 2u);
    EXPECT_FALSE(alloc->promotions[0].boxLo[0].empty());
    EXPECT_FALSE(alloc->promotions[0].boxHi[0].empty());
}

TEST_F(ConvCodegen, OpenMPPrinterEmitsPragmasAndTiles)
{
    auto state = compile(driver::Strategy::Ours, {2, 2});
    std::string code = printCode(prog_, state.ast);
    EXPECT_NE(code.find("#pragma omp parallel for"),
              std::string::npos);
    EXPECT_NE(code.find("pf_fdiv"), std::string::npos);
    EXPECT_NE(code.find("S2("), std::string::npos);
    EXPECT_NE(code.find("scratchpad for A"), std::string::npos);
    // The skipped original S0 nest is not emitted on its own: S0
    // appears only once (inside the fused tile).
    size_t first = code.find("S0(");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(code.find("S0(", first + 1), std::string::npos);
}

TEST_F(ConvCodegen, CudaPrinterAnnotatesGridMapping)
{
    auto state =
        compile(driver::Strategy::Ours, {2, 2}, /*parallelism=*/2);
    std::string code =
        printCode(prog_, state.ast, PrintStyle::Cuda);
    EXPECT_NE(code.find("blockIdx"), std::string::npos);
}

TEST_F(ConvCodegen, MaxfuseAstCarriesShiftedBindings)
{
    // Empty tile sizes: maxfuse without tiling, as in Fig. 1(c).
    auto state = compile(driver::Strategy::MaxFuse, {});
    std::string code = printCode(prog_, state.ast);
    // Shifted statements index with an offset (e.g. "c0 - 2").
    EXPECT_NE(code.find(" - 2"), std::string::npos);
    // Fused loop is serial: no parallel pragma on the fused nest.
    EXPECT_EQ(code.find("#pragma omp parallel for"),
              std::string::npos);
}

TEST_F(ConvCodegen, GuardsAppearForUnionBounds)
{
    // maxfuse merges S0 (domain HxW) with S1..S3 (smaller domain):
    // guards must protect the smaller statements.
    auto state = compile(driver::Strategy::MaxFuse, {});
    unsigned guarded = 0;
    std::function<void(const AstPtr &)> walk =
        [&](const AstPtr &n) {
            if (n->kind == AstKind::Stmt && !n->guards.empty())
                ++guarded;
            for (const auto &c : n->children)
                walk(c);
        };
    walk(state.ast);
    EXPECT_GT(guarded, 0u);
}

} // namespace
} // namespace codegen
} // namespace polyfuse
