/**
 * @file
 * Tests for schedule trees and the baseline fusion heuristics on the
 * paper's convolution: the initial tree of Fig. 2(a), the annotated
 * attributes of Fig. 2(b), tiling splits (Sec. IV-A), and the fusion
 * partitions the paper reports per heuristic.
 */

#include <gtest/gtest.h>

#include "schedule/fusion.hh"
#include "support/logging.hh"
#include "schedule/tree.hh"
#include "workloads/conv2d.hh"

namespace polyfuse {
namespace schedule {
namespace {

class ConvTree : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prog_ = workloads::makeConv2D({6, 6, 3, 3});
        graph_ = deps::DependenceGraph::compute(prog_);
    }

    ir::Program prog_;
    deps::DependenceGraph graph_;
};

TEST_F(ConvTree, InitialTreeShapeMatchesFig2a)
{
    ScheduleTree t = ScheduleTree::initial(prog_);
    const NodePtr &root = t.root();
    ASSERT_EQ(root->kind, NodeKind::Domain);
    NodePtr seq = root->onlyChild();
    ASSERT_EQ(seq->kind, NodeKind::Sequence);
    ASSERT_EQ(seq->children.size(), 3u); // {S0}, {S1,S2}, {S3}

    // Group 0: filter {S0} -> band(h, w) -> leaf.
    NodePtr f0 = seq->children[0];
    EXPECT_EQ(f0->filter, (std::vector<std::string>{"S0"}));
    NodePtr b0 = f0->onlyChild();
    ASSERT_EQ(b0->kind, NodeKind::Band);
    EXPECT_EQ(b0->numBandDims(), 2u);

    // Group 1: filter {S1,S2} -> band(h,w) -> sequence -> S2 band.
    NodePtr f1 = seq->children[1];
    EXPECT_EQ(f1->filter,
              (std::vector<std::string>{"S1", "S2"}));
    NodePtr b1 = f1->onlyChild();
    ASSERT_EQ(b1->kind, NodeKind::Band);
    EXPECT_EQ(b1->numBandDims(), 2u);
    NodePtr inner_seq = b1->onlyChild();
    ASSERT_EQ(inner_seq->kind, NodeKind::Sequence);
    ASSERT_EQ(inner_seq->children.size(), 2u);
    NodePtr s2_band = ScheduleTree::findBand(inner_seq->children[1]);
    ASSERT_TRUE(s2_band);
    EXPECT_EQ(s2_band->numBandDims(), 2u); // kh, kw
}

TEST_F(ConvTree, AnnotationMatchesFig2b)
{
    ScheduleTree t = ScheduleTree::initial(prog_);
    t.annotate(graph_);

    NodePtr seq = t.root()->onlyChild();
    NodePtr band0 = ScheduleTree::findBand(seq->children[0]);
    EXPECT_TRUE(band0->permutable);
    EXPECT_EQ(band0->coincident, (std::vector<bool>{true, true}));

    NodePtr band1 = ScheduleTree::findBand(seq->children[1]);
    EXPECT_TRUE(band1->permutable);
    EXPECT_EQ(band1->coincident, (std::vector<bool>{true, true}));

    // The reduction's (kh, kw) band is serial.
    NodePtr red = ScheduleTree::findBand(
        band1->onlyChild()->children[1]);
    EXPECT_EQ(red->coincident, (std::vector<bool>{false, false}));
}

TEST_F(ConvTree, TileBandSplitsIntoTileAndPointBands)
{
    ScheduleTree t = ScheduleTree::initial(prog_);
    t.annotate(graph_);
    NodePtr band1 =
        ScheduleTree::findBand(t.root()->onlyChild()->children[1]);
    NodePtr tile = t.tileBand(band1, {2, 2});
    EXPECT_EQ(tile->tileSizes, (std::vector<int64_t>{2, 2}));
    NodePtr point = tile->onlyChild();
    ASSERT_EQ(point->kind, NodeKind::Band);
    EXPECT_TRUE(point->tileSizes.empty());
    EXPECT_EQ(point->numBandDims(), 2u);
    // The point band kept the original children.
    EXPECT_EQ(point->onlyChild()->kind, NodeKind::Sequence);
    // Double tiling is rejected.
    EXPECT_THROW(t.tileBand(tile, {2, 2}), FatalError);
}

TEST_F(ConvTree, MinfuseKeepsGroupsSeparate)
{
    auto r = applyFusion(prog_, graph_, FusionPolicy::Min);
    ASSERT_EQ(r.clusters.size(), 3u);
    EXPECT_EQ(r.clusters[0], (std::vector<int>{0}));
    EXPECT_EQ(r.clusters[1], (std::vector<int>{1}));
    EXPECT_EQ(r.clusters[2], (std::vector<int>{2}));
}

TEST_F(ConvTree, SmartfuseMatchesPaperPartition)
{
    // The paper's conservative heuristic: ({S0}, {S1, S2, S3}).
    auto r = applyFusion(prog_, graph_, FusionPolicy::Smart);
    ASSERT_EQ(r.clusters.size(), 2u);
    EXPECT_EQ(r.clusters[0], (std::vector<int>{0}));
    EXPECT_EQ(r.clusters[1], (std::vector<int>{1, 2}));

    // The fused band keeps outer parallelism.
    NodePtr seq = r.tree.root()->onlyChild();
    NodePtr fused = ScheduleTree::findBand(seq->children[1]);
    EXPECT_EQ(fused->coincident, (std::vector<bool>{true, true}));
    // No shifts were applied.
    for (const auto &[name, m] : fused->members)
        for (int64_t s : m.shifts)
            EXPECT_EQ(s, 0);
}

TEST_F(ConvTree, MaxfuseFusesAllWithShiftsAndLosesParallelism)
{
    auto r = applyFusion(prog_, graph_, FusionPolicy::Max);
    ASSERT_EQ(r.clusters.size(), 1u);
    EXPECT_EQ(r.clusters[0], (std::vector<int>{0, 1, 2}));

    NodePtr fused = ScheduleTree::findBand(r.tree.root());
    ASSERT_TRUE(fused);
    // S0 keeps shift 0; consumers are shifted by KH-1 = KW-1 = 2.
    EXPECT_EQ(fused->members.at("S0").shifts,
              (std::vector<int64_t>{0, 0}));
    EXPECT_EQ(fused->members.at("S2").shifts,
              (std::vector<int64_t>{2, 2}));
    // Fig. 1(c): the fused loops are no longer parallel.
    EXPECT_EQ(fused->coincident, (std::vector<bool>{false, false}));
}

TEST_F(ConvTree, PolicyNamesRoundTrip)
{
    for (auto p : {FusionPolicy::Min, FusionPolicy::Smart,
                   FusionPolicy::Max, FusionPolicy::Hybrid})
        EXPECT_EQ(parseFusionPolicy(fusionPolicyName(p)), p);
    EXPECT_THROW(parseFusionPolicy("nope"), FatalError);
}

TEST_F(ConvTree, CloneIsDeep)
{
    ScheduleTree t = ScheduleTree::initial(prog_);
    ScheduleTree c = t.clone();
    NodePtr band = ScheduleTree::findBand(c.root());
    c.tileBand(band, {4, 4});
    // Original tree unaffected.
    EXPECT_TRUE(ScheduleTree::findBand(t.root())->tileSizes.empty());
}

TEST_F(ConvTree, StatementsUnderCollectsFiltersAndBands)
{
    ScheduleTree t = ScheduleTree::initial(prog_);
    auto names = t.statementsUnder(t.root());
    EXPECT_EQ(names.size(), 4u);
    NodePtr seq = t.root()->onlyChild();
    auto g1 = t.statementsUnder(seq->children[1]);
    EXPECT_EQ(g1, (std::vector<std::string>{"S1", "S2"}));
}

TEST_F(ConvTree, TreePrintingMentionsStructure)
{
    ScheduleTree t = ScheduleTree::initial(prog_);
    t.annotate(graph_);
    std::string text = t.str();
    EXPECT_NE(text.find("domain"), std::string::npos);
    EXPECT_NE(text.find("sequence"), std::string::npos);
    EXPECT_NE(text.find("filter {S1, S2}"), std::string::npos);
    EXPECT_NE(text.find("band"), std::string::npos);
}

TEST(Fusion, IndependentGroupsAreNotFused)
{
    // Two independent nests: nothing to gain, stay separate.
    ir::ProgramBuilder b("indep");
    b.param("N", 16);
    b.tensor("A", {"N"}, ir::TensorKind::Output);
    b.tensor("B", {"N"}, ir::TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < N }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::lit(1.0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N }")
        .writes("B", "{ S1[i] -> B[i] }")
        .body(ir::lit(2.0))
        .group(1);
    ir::Program p = b.build();
    auto g = deps::DependenceGraph::compute(p);
    auto r = applyFusion(p, g, FusionPolicy::Max);
    EXPECT_EQ(r.clusters.size(), 2u);
}

TEST(Fusion, PointwiseChainFusesUnderSmart)
{
    // A[i] = ...; B[i] = f(A[i]); C[i] = g(B[i]): all fuse.
    ir::ProgramBuilder b("chain");
    b.param("N", 16);
    b.tensor("A", {"N"}, ir::TensorKind::Temp);
    b.tensor("B", {"N"}, ir::TensorKind::Temp);
    b.tensor("C", {"N"}, ir::TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < N }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::lit(1.0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N }")
        .reads("A", "{ S1[i] -> A[i] }")
        .writes("B", "{ S1[i] -> B[i] }")
        .body(ir::loadAcc(0))
        .group(1);
    b.statement("S2")
        .domain("[N] -> { S2[i] : 0 <= i < N }")
        .reads("B", "{ S2[i] -> B[i] }")
        .writes("C", "{ S2[i] -> C[i] }")
        .body(ir::loadAcc(0))
        .group(2);
    ir::Program p = b.build();
    auto g = deps::DependenceGraph::compute(p);
    auto r = applyFusion(p, g, FusionPolicy::Smart);
    ASSERT_EQ(r.clusters.size(), 1u);
    NodePtr band = ScheduleTree::findBand(r.tree.root());
    EXPECT_EQ(band->coincident, (std::vector<bool>{true}));
}

TEST(Fusion, SmartRefusesShiftedStencilButMaxAccepts)
{
    // B[i] = A[i] + A[i+1] where A produced by S0: needs a shift.
    ir::ProgramBuilder b("stencil");
    b.param("N", 16);
    b.tensor("A", {"N + 1"}, ir::TensorKind::Temp);
    b.tensor("B", {"N"}, ir::TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i <= N }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::lit(1.0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N }")
        .reads("A", "{ S1[i] -> A[i] }")
        .reads("A", "{ S1[i] -> A[i + 1] }")
        .writes("B", "{ S1[i] -> B[i] }")
        .body(ir::bin(ir::BinOp::Add, ir::loadAcc(0), ir::loadAcc(1)))
        .group(1);
    ir::Program p = b.build();
    auto g = deps::DependenceGraph::compute(p);

    auto smart = applyFusion(p, g, FusionPolicy::Smart);
    EXPECT_EQ(smart.clusters.size(), 2u);

    auto max = applyFusion(p, g, FusionPolicy::Max);
    ASSERT_EQ(max.clusters.size(), 1u);
    NodePtr band = ScheduleTree::findBand(max.tree.root());
    EXPECT_EQ(band->members.at("S1").shifts,
              (std::vector<int64_t>{1}));
    EXPECT_EQ(band->coincident, (std::vector<bool>{false}));
}

} // namespace
} // namespace schedule
} // namespace polyfuse
