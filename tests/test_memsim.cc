/**
 * @file
 * Tests for the cache simulator, the GPU model, the DaVinci model
 * and the parallel-scaling model -- including the headline property:
 * the composed (post-tiling fused) conv schedule misses less than
 * the conservative one.
 */

#include <gtest/gtest.h>

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "exec/executor.hh"
#include "memsim/cache.hh"
#include "memsim/davinci.hh"
#include "memsim/gpu.hh"
#include "perfmodel/parallel.hh"
#include "schedule/fusion.hh"
#include "support/logging.hh"
#include "workloads/conv2d.hh"

namespace polyfuse {
namespace memsim {
namespace {

TEST(CacheLevel, HitsAfterColdMiss)
{
    CacheLevel l1(CacheConfig{1024, 64, 2, "L1"});
    EXPECT_FALSE(l1.access(100));
    EXPECT_TRUE(l1.access(100));
    EXPECT_EQ(l1.hits(), 1u);
    EXPECT_EQ(l1.misses(), 1u);
}

TEST(CacheLevel, LruEvictionOrder)
{
    // 1024 B / 64 B lines / 2 ways = 8 sets; lines 0, 8, 16 map to
    // set 0 and only two fit.
    CacheLevel l1(CacheConfig{1024, 64, 2, "L1"});
    l1.access(0);
    l1.access(8);
    l1.access(16); // evicts 0
    EXPECT_FALSE(l1.access(0));
    // Now 0 and 16 are resident (8 evicted when 0 returned).
    EXPECT_TRUE(l1.access(16));
    EXPECT_FALSE(l1.access(8));
}

TEST(CacheLevel, RejectsBadGeometry)
{
    EXPECT_THROW(CacheLevel(CacheConfig{1000, 64, 3, "X"}),
                 FatalError);
    EXPECT_THROW(CacheLevel(CacheConfig{0, 64, 1, "X"}), FatalError);
}

TEST(MemoryHierarchy, SequentialScanHasSpatialLocality)
{
    auto mem = MemoryHierarchy::typicalCpu();
    mem.addSpace(0, 1 << 16);
    for (int64_t i = 0; i < 4096; ++i)
        mem.access(0, i, false);
    // 8 doubles per 64 B line: 1 miss per 8 accesses.
    EXPECT_EQ(mem.stats().accesses, 4096u);
    EXPECT_EQ(mem.stats().l1Misses, 4096u / 8);
    EXPECT_GT(mem.estimatedCycles(), 0.0);
}

TEST(MemoryHierarchy, DistinctSpacesDoNotShareLines)
{
    auto mem = MemoryHierarchy::typicalCpu();
    mem.addSpace(0, 8);
    mem.addSpace(1, 8);
    mem.access(0, 0, false);
    mem.access(1, 0, false);
    EXPECT_EQ(mem.stats().l1Misses, 2u);
    EXPECT_THROW(mem.access(5, 0, false), FatalError);
}

TEST(MemoryHierarchy, ComposedConvMissesLessThanMinfuse)
{
    // The paper's core claim, measured in simulated misses: the
    // post-tiling fused schedule keeps the intermediate A in a
    // scratchpad and re-uses it, the conservative schedule streams A
    // through the hierarchy twice.
    ir::Program p = workloads::makeConv2D({96, 96, 5, 5});
    auto graph = deps::DependenceGraph::compute(p);

    auto measure = [&](const schedule::ScheduleTree &tree) {
        exec::Buffers buf(p);
        buf.fillPattern(p.tensorId("A"), 7);
        buf.fillPattern(p.tensorId("B"), 13);
        // Small L1 makes capacity effects visible at this size.
        MemoryHierarchy mem(CacheConfig{8 * 1024, 64, 8, "L1"},
                            CacheConfig{128 * 1024, 64, 16, "L2"});
        for (size_t t = 0; t < p.tensors().size(); ++t) {
            mem.addSpace(t, p.tensorSize(t));
            mem.addSpace(p.tensors().size() + t, p.tensorSize(t));
        }
        exec::run(p, codegen::generateAst(tree), buf,
                  [&](int space, int64_t off, bool w) {
                      mem.access(space, off, w);
                  });
        return mem.stats();
    };

    auto minfuse =
        schedule::applyFusion(p, graph, schedule::FusionPolicy::Min);
    core::ComposeOptions opts;
    opts.tileSizes = {16, 16};
    auto ours = core::compose(p, graph, opts);

    auto ms = measure(minfuse.tree);
    auto os = measure(ours.tree);
    EXPECT_LT(os.dramBytes, ms.dramBytes);
}

TEST(GpuModel, FusedScheduleBeatsMinfuse)
{
    ir::Program p = workloads::makeConv2D({128, 128, 3, 3});
    auto graph = deps::DependenceGraph::compute(p);

    auto measure = [&](const schedule::ScheduleTree &tree) {
        exec::Buffers buf(p);
        buf.fillPattern(p.tensorId("A"), 7);
        buf.fillPattern(p.tensorId("B"), 13);
        GpuTraceCounts counts;
        int nt = p.tensors().size();
        auto ast = codegen::generateAst(tree);
        auto stats = exec::run(p, ast, buf,
                               [&](int space, int64_t, bool) {
                                   if (space >= nt)
                                       ++counts.sharedAccesses;
                                   else
                                       ++counts.globalAccesses;
                               });
        return estimateGpu(p, ast, stats, counts);
    };

    auto minfuse =
        schedule::applyFusion(p, graph, schedule::FusionPolicy::Min);
    core::ComposeOptions opts;
    opts.tileSizes = {16, 16};
    opts.targetParallelism = 2;
    auto ours = core::compose(p, graph, opts);

    GpuEstimate m = measure(minfuse.tree);
    GpuEstimate o = measure(ours.tree);
    EXPECT_LT(o.globalBytes, m.globalBytes);
    EXPECT_LT(o.ms, m.ms);
    EXPECT_GT(o.sharedBytes, 0.0);
}

TEST(GpuModel, SerialScheduleLosesOccupancy)
{
    ir::Program p = workloads::makeConv2D({64, 64, 3, 3});
    auto graph = deps::DependenceGraph::compute(p);
    auto maxfuse =
        schedule::applyFusion(p, graph, schedule::FusionPolicy::Max);
    exec::Buffers buf(p);
    buf.fillPattern(p.tensorId("A"), 7);
    buf.fillPattern(p.tensorId("B"), 13);
    auto ast = codegen::generateAst(maxfuse.tree);
    auto stats = exec::run(p, ast, buf);
    GpuEstimate e = estimateGpu(p, ast, stats, {});
    EXPECT_LT(e.occupancy, 0.05);
}

TEST(DaVinci, FusionRemovesGmRoundTrip)
{
    ConvLayer layer;
    layer.batch = 1;
    layer.cin = 256;
    layer.cout = 256;
    layer.height = 16;
    layer.width = 16;
    layer.kernel = 3;
    LayerEstimate unfused = estimateConvBn(layer, false);
    LayerEstimate fused = estimateConvBn(layer, true);
    EXPECT_LT(fused.gmBytes, unfused.gmBytes);
    EXPECT_LT(fused.totalMs, unfused.totalMs);
    // The eliminated traffic is exactly the conv-output round trip.
    EXPECT_DOUBLE_EQ(unfused.gmBytes - fused.gmBytes,
                     2.0 * layer.outBytes(2));
}

TEST(DaVinci, LayerGeometryHelpers)
{
    ConvLayer layer;
    layer.batch = 2;
    layer.cin = 3;
    layer.cout = 8;
    layer.height = 10;
    layer.width = 10;
    layer.kernel = 3;
    layer.stride = 1;
    EXPECT_EQ(layer.outH(), 8);
    EXPECT_EQ(layer.outW(), 8);
    EXPECT_DOUBLE_EQ(layer.flops(),
                     2.0 * 2 * 8 * 8 * 8 * 3 * 3 * 3);
    EXPECT_DOUBLE_EQ(layer.weightBytes(2), 8.0 * 3 * 9 * 2);
}

TEST(ParallelModel, AmdahlBasics)
{
    using perfmodel::amdahlSpeedup;
    EXPECT_NEAR(amdahlSpeedup(1.0, 1, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(amdahlSpeedup(1.0, 16, 0.0), 16.0, 1e-12);
    EXPECT_NEAR(amdahlSpeedup(0.0, 32, 0.0), 1.0, 1e-12);
    // 90% parallel, 8 threads: 1 / (0.1 + 0.9/8).
    EXPECT_NEAR(amdahlSpeedup(0.9, 8, 0.0), 1.0 / 0.2125, 1e-9);
    // Sync overhead caps scaling.
    EXPECT_LT(amdahlSpeedup(1.0, 32, 0.01), 32.0);
}

TEST(ParallelModel, ScheduleParallelismDrivesTheFraction)
{
    ir::Program p = workloads::makeConv2D({32, 32, 3, 3});
    auto graph = deps::DependenceGraph::compute(p);

    auto fractionOf = [&](const schedule::ScheduleTree &tree) {
        exec::Buffers buf(p);
        buf.fillPattern(p.tensorId("A"), 7);
        buf.fillPattern(p.tensorId("B"), 13);
        auto stats =
            exec::run(p, codegen::generateAst(tree), buf);
        return perfmodel::parallelFraction(stats);
    };

    auto smart =
        schedule::applyFusion(p, graph, schedule::FusionPolicy::Smart);
    auto max =
        schedule::applyFusion(p, graph, schedule::FusionPolicy::Max);
    EXPECT_GT(fractionOf(smart.tree), 0.95);
    EXPECT_LT(fractionOf(max.tree), 0.05);
}

} // namespace
} // namespace memsim
} // namespace polyfuse
