/**
 * @file
 * Tests of the composition's option surface and design-choice
 * ablations: footprint dilation (PolyMage emulation), the
 * no-redundancy recomputation guard, startup heuristic choice,
 * target parallelism, and tile-size sweeps (parameterized).
 */

#include <gtest/gtest.h>

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "exec/executor.hh"
#include "workloads/conv2d.hh"
#include "workloads/polybench.hh"

namespace polyfuse {
namespace core {
namespace {

using schedule::FusionPolicy;

exec::ExecStats
runConv(const ir::Program &p, const ComposeResult &r)
{
    exec::Buffers buf(p);
    buf.fillPattern(p.tensorId("A"), 7);
    buf.fillPattern(p.tensorId("B"), 13);
    return exec::run(p, codegen::generateAst(r.tree), buf);
}

TEST(ComposeOptions, DilationAddsRecomputationButStaysCorrect)
{
    ir::Program p = workloads::makeConv2D({32, 32, 3, 3});
    auto g = deps::DependenceGraph::compute(p);

    ComposeOptions tight;
    tight.tileSizes = {8, 8};
    auto rt = compose(p, g, tight);

    ComposeOptions loose = tight;
    loose.footprintDilation = 1;
    auto rl = compose(p, g, loose);

    auto st = runConv(p, rt);
    auto sl = runConv(p, rl);
    // Dilated footprints execute strictly more producer instances.
    EXPECT_GT(sl.instances, st.instances);

    // And both match the reference output.
    exec::Buffers a(p), b(p);
    a.fillPattern(p.tensorId("A"), 7);
    a.fillPattern(p.tensorId("B"), 13);
    b.fillPattern(p.tensorId("A"), 7);
    b.fillPattern(p.tensorId("B"), 13);
    exec::run(p, codegen::generateAst(rt.tree), a);
    exec::run(p, codegen::generateAst(rl.tree), b);
    EXPECT_EQ(a.data(p.tensorId("C")), b.data(p.tensorId("C")));
}

TEST(ComposeOptions, RecomputeGuardRejectsMatmulStyleFusion)
{
    ir::Program p = workloads::make2mm(64, 64, 64, 64);
    auto g = deps::DependenceGraph::compute(p);
    ComposeOptions opts;
    opts.tileSizes = {8, 8};
    opts.startup = FusionPolicy::Min;
    auto r = compose(p, g, opts);
    // Fusing Tmp into D's tiles would recompute whole rows: rejected.
    EXPECT_TRUE(r.fusedIntermediates.empty());
    EXPECT_EQ(r.spaces.size(), 2u);

    // Raising the threshold far enough re-enables the fusion.
    opts.maxRecompute = 100.0;
    auto r2 = compose(p, g, opts);
    EXPECT_FALSE(r2.fusedIntermediates.empty());
}

TEST(ComposeOptions, GuardStillAllowsBoundedHalos)
{
    // Stencil halo factors are ~(T+K-1)/T per dim: far below 4.
    ir::Program p = workloads::makeConv2D({64, 64, 3, 3});
    auto g = deps::DependenceGraph::compute(p);
    ComposeOptions opts;
    opts.tileSizes = {16, 16};
    auto r = compose(p, g, opts);
    EXPECT_EQ(r.fusedIntermediates,
              (std::vector<std::string>{"S0"}));
}

TEST(ComposeOptions, MinStartupStillComposesTheConv)
{
    // With minfuse startup the three conv groups are separate
    // spaces; S3 and {S1,S2} are both live-out, so Algorithm 3
    // prevents their fusion, but S0 still fuses into {S1,S2}.
    ir::Program p = workloads::makeConv2D({32, 32, 3, 3});
    auto g = deps::DependenceGraph::compute(p);
    ComposeOptions opts;
    opts.tileSizes = {8, 8};
    opts.startup = FusionPolicy::Min;
    auto r = compose(p, g, opts);
    EXPECT_EQ(r.fusedIntermediates,
              (std::vector<std::string>{"S0"}));
    EXPECT_EQ(r.spaces.size(), 2u); // {S0,S1,S2} and {S3}
}

TEST(ComposeOptions, HigherParallelismBarDisablesTiling)
{
    // A live-out with only 1 leading parallel dim cannot satisfy a
    // GPU-style bar of 2 -> untiled, but extension fusion survives.
    ir::ProgramBuilder b("onepar");
    b.param("N", 32);
    b.tensor("A", {"N", "N"}, ir::TensorKind::Temp);
    b.tensor("B", {"N", "N"}, ir::TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i, j] : 0 <= i < N and 0 <= j < N }")
        .writes("A", "{ S0[i, j] -> A[i, j] }")
        .body(ir::lit(1.0))
        .group(0);
    // Serial in j (scan), parallel in i only.
    b.statement("S1")
        .domain("[N] -> { S1[i, j] : 0 <= i < N and 1 <= j < N }")
        .reads("A", "{ S1[i, j] -> A[i, j] }")
        .reads("B", "{ S1[i, j] -> B[i, j - 1] }")
        .writes("B", "{ S1[i, j] -> B[i, j] }")
        .body(ir::bin(ir::BinOp::Add, ir::loadAcc(0), ir::loadAcc(1)))
        .group(1);
    ir::Program p = b.build();
    auto g = deps::DependenceGraph::compute(p);

    ComposeOptions cpu;
    cpu.tileSizes = {8, 8};
    cpu.targetParallelism = 1;
    cpu.startup = FusionPolicy::Min;
    auto rc = compose(p, g, cpu);
    EXPECT_EQ(rc.tiledLiveOuts, 1u);

    ComposeOptions gpu = cpu;
    gpu.targetParallelism = 2;
    auto rg = compose(p, g, gpu);
    EXPECT_EQ(rg.tiledLiveOuts, 0u);
    EXPECT_FALSE(rg.fusedIntermediates.empty());
}

TEST(ComposeOptions, EmptyTileSizesDisableTiling)
{
    ir::Program p = workloads::makeConv2D({32, 32, 3, 3});
    auto g = deps::DependenceGraph::compute(p);
    ComposeOptions opts;
    opts.tileSizes = {};
    auto r = compose(p, g, opts);
    EXPECT_EQ(r.tiledLiveOuts, 0u);
    // Fusion without tiling (empty-domain extension, Sec. VI-A).
    EXPECT_FALSE(r.fusedIntermediates.empty());
    EXPECT_EQ(runConv(p, r).instances, 32u * 32 + 30u * 30 * 11);
}

/** Tile-size sweep: correctness and halo growth are monotone. */
class TileSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(TileSweep, ComposedConvMatchesReferenceAtEveryTileSize)
{
    int64_t tile = GetParam();
    ir::Program p = workloads::makeConv2D({40, 40, 5, 5});
    auto g = deps::DependenceGraph::compute(p);

    auto runTree = [&](const schedule::ScheduleTree &t) {
        exec::Buffers buf(p);
        buf.fillPattern(p.tensorId("A"), 7);
        buf.fillPattern(p.tensorId("B"), 13);
        exec::run(p, codegen::generateAst(t), buf);
        return buf.data(p.tensorId("C"));
    };
    auto initial = schedule::ScheduleTree::initial(p);
    initial.annotate(g);
    auto ref = runTree(initial);

    ComposeOptions opts;
    opts.tileSizes = {tile, tile};
    auto r = compose(p, g, opts);
    EXPECT_EQ(runTree(r.tree), ref) << "tile=" << tile;
}

TEST_P(TileSweep, SmallerTilesRecomputeMoreHalo)
{
    int64_t tile = GetParam();
    if (tile >= 36)
        GTEST_SKIP() << "single tile: no halo";
    ir::Program p = workloads::makeConv2D({40, 40, 5, 5});
    auto g = deps::DependenceGraph::compute(p);
    ComposeOptions opts;
    opts.tileSizes = {tile, tile};
    auto r = compose(p, g, opts);
    auto s = runConv(p, r);

    ComposeOptions big;
    big.tileSizes = {36, 36};
    auto rb = compose(p, g, big);
    auto sb = runConv(p, rb);
    EXPECT_GE(s.instances, sb.instances) << "tile=" << tile;
}

INSTANTIATE_TEST_SUITE_P(Sizes, TileSweep,
                         ::testing::Values(3, 4, 5, 7, 8, 9, 12, 16,
                                           18, 36, 64));

} // namespace
} // namespace core
} // namespace polyfuse
