/**
 * @file
 * Tests for the core composition (Algorithms 1-3) on the paper's
 * running example and on hand-built multi-live-out programs, all
 * compiled through the driver's pass pipeline.
 */

#include <gtest/gtest.h>

#include "driver/pipeline.hh"
#include "support/logging.hh"
#include "workloads/conv2d.hh"

namespace polyfuse {
namespace core {
namespace {

using ir::Program;
using ir::ProgramBuilder;
using ir::TensorKind;
using schedule::NodeKind;
using schedule::NodePtr;
using schedule::ScheduleTree;

/** Run the composition strategy through the driver pipeline. */
driver::CompilationState
runOurs(const Program &p, std::vector<int64_t> tiles,
        schedule::FusionPolicy startup = schedule::FusionPolicy::Smart,
        unsigned target_parallelism = 1)
{
    driver::PipelineOptions opts;
    opts.strategy = driver::Strategy::Ours;
    opts.tileSizes = std::move(tiles);
    opts.startup = startup;
    opts.targetParallelism = target_parallelism;
    return driver::Pipeline(opts).run(p);
}

class ConvCompose : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prog_ = workloads::makeConv2D({6, 6, 3, 3});
        state_ = runOurs(prog_, {2, 2});
        result_ = state_.composed;
    }

    Program prog_;
    driver::CompilationState state_;
    ComposeResult result_;
};

TEST_F(ConvCompose, AllFourStatementsEndUpInOneSpace)
{
    // Algorithm 2 returns ({S0, S1, S2, S3}) for the example.
    ASSERT_EQ(result_.spaces.size(), 1u);
    EXPECT_EQ(result_.spaces[0], (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(result_.fusedIntermediates,
              (std::vector<std::string>{"S0"}));
    EXPECT_EQ(result_.skippedStatements,
              (std::vector<std::string>{"S0"}));
    EXPECT_EQ(result_.tiledLiveOuts, 1u);
}

TEST_F(ConvCompose, TreeShapeMatchesFig5)
{
    NodePtr top_seq = result_.tree.root()->onlyChild();
    ASSERT_EQ(top_seq->kind, NodeKind::Sequence);
    ASSERT_EQ(top_seq->children.size(), 2u);

    // First child: filter {S0} -> mark "skipped" -> band0.
    NodePtr f0 = top_seq->children[0];
    EXPECT_EQ(f0->filter, (std::vector<std::string>{"S0"}));
    NodePtr mark = f0->onlyChild();
    ASSERT_EQ(mark->kind, NodeKind::Mark);
    EXPECT_EQ(mark->markLabel, "skipped");
    EXPECT_EQ(ScheduleTree::findBand(mark)->numBandDims(), 2u);

    // Second child: filter {S1,S2,S3} -> tile band -> extension ->
    // sequence [filter {S0} -> band0', filter {S1,S2,S3} -> point].
    NodePtr f1 = top_seq->children[1];
    NodePtr tile = f1->onlyChild();
    ASSERT_EQ(tile->kind, NodeKind::Band);
    EXPECT_EQ(tile->tileSizes, (std::vector<int64_t>{2, 2}));
    NodePtr ext = tile->onlyChild();
    ASSERT_EQ(ext->kind, NodeKind::Extension);
    NodePtr seq = ext->onlyChild();
    ASSERT_EQ(seq->kind, NodeKind::Sequence);
    ASSERT_EQ(seq->children.size(), 2u);
    EXPECT_EQ(seq->children[0]->filter,
              (std::vector<std::string>{"S0"}));
    NodePtr point = ScheduleTree::findBand(seq->children[1]);
    ASSERT_TRUE(point);
    EXPECT_TRUE(point->tileSizes.empty());
    EXPECT_EQ(point->numBandDims(), 2u);
}

TEST_F(ConvCompose, ExtensionScheduleMatchesEq6)
{
    // Blue tile (o0, o1) = (1, 0) -> S0 instances
    // { S0[h, w] : 2 <= h <= 5 and 0 <= w <= 3 } (Sec. III-B).
    auto it = result_.extensionSchedules.find("S0");
    ASSERT_NE(it, result_.extensionSchedules.end());
    const pres::Map &h = it->second;
    ASSERT_EQ(h.pieces().size(), 1u);
    pres::BasicMap fixed =
        h.pieces()[0].fixInDim(0, 1).fixInDim(1, 0);
    for (const auto &[name, value] : prog_.paramValues())
        fixed = fixed.fixParam(name, value);
    auto pts = fixed.range().enumerate({});
    EXPECT_EQ(pts.size(), 16u);
    for (const auto &p : pts) {
        EXPECT_GE(p[0], 2);
        EXPECT_LE(p[0], 5);
        EXPECT_GE(p[1], 0);
        EXPECT_LE(p[1], 3);
    }
}

TEST_F(ConvCompose, TileBandKeepsParallelism)
{
    // Post-tiling fusion must not lose the parallelism of the
    // live-out space (Sec. IV).
    NodePtr f1 = result_.tree.root()->onlyChild()->children[1];
    NodePtr tile = f1->onlyChild();
    EXPECT_EQ(tile->coincident, (std::vector<bool>{true, true}));
    EXPECT_TRUE(tile->permutable);
}

TEST_F(ConvCompose, NoDeadCodeInFullCoverage)
{
    // The union of S0 tiles covers the whole S0 domain here (the
    // convolution reads every input point), so no dead stores.
    EXPECT_FALSE(result_.deadCodeEliminated);
}

TEST(Compose, GuardRejectsSerialIntermediateForParallelTarget)
{
    // Intermediate with zero parallel loops (a serial scan) must not
    // be fused into a parallel live-out (m > n guard).
    ProgramBuilder b("guard");
    b.param("N", 16);
    b.tensor("A", {"N"}, TensorKind::Temp);
    b.tensor("B", {"N"}, TensorKind::Output);
    // S0: A[i] = A[i-1] + 1 (serial).
    b.statement("S0")
        .domain("[N] -> { S0[i] : 1 <= i < N }")
        .reads("A", "{ S0[i] -> A[i - 1] }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::bin(ir::BinOp::Add, ir::loadAcc(0), ir::lit(1.0)))
        .group(0);
    // S1: B[i] = A[i] (parallel).
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N }")
        .reads("A", "{ S1[i] -> A[i] }")
        .writes("B", "{ S1[i] -> B[i] }")
        .body(ir::loadAcc(0))
        .group(1);
    Program p = b.build();
    auto r = runOurs(p, {4}, schedule::FusionPolicy::Min).composed;
    EXPECT_TRUE(r.fusedIntermediates.empty());
    EXPECT_TRUE(r.skippedStatements.empty());
    EXPECT_EQ(r.spaces.size(), 2u);
}

TEST(Compose, ChainOfIntermediatesFusesTransitively)
{
    // S0 -> S1 -> S2(live-out): both intermediates fused through
    // the propagated footprints (lines 10-15 of Algorithm 1).
    ProgramBuilder b("chain");
    b.param("N", 32);
    b.tensor("A", {"N + 2"}, TensorKind::Temp);
    b.tensor("B", {"N + 1"}, TensorKind::Temp);
    b.tensor("C", {"N"}, TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < N + 2 }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::lit(1.0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N + 1 }")
        .reads("A", "{ S1[i] -> A[i] }")
        .reads("A", "{ S1[i] -> A[i + 1] }")
        .writes("B", "{ S1[i] -> B[i] }")
        .body(ir::bin(ir::BinOp::Add, ir::loadAcc(0), ir::loadAcc(1)))
        .group(1);
    b.statement("S2")
        .domain("[N] -> { S2[i] : 0 <= i < N }")
        .reads("B", "{ S2[i] -> B[i] }")
        .reads("B", "{ S2[i] -> B[i + 1] }")
        .writes("C", "{ S2[i] -> C[i] }")
        .body(ir::bin(ir::BinOp::Add, ir::loadAcc(0), ir::loadAcc(1)))
        .group(2);
    Program p = b.build();
    auto r = runOurs(p, {8}, schedule::FusionPolicy::Min).composed;
    ASSERT_EQ(r.spaces.size(), 1u);
    EXPECT_EQ(r.fusedIntermediates.size(), 2u);

    // Overlapped tile shapes: tile o covers B[8o .. 8o+8] (9 points)
    // and A[8o .. 8o+9] (10 points); the schedules are unions of
    // pieces (one per read access), so count points across pieces.
    auto tilePoints = [&](const std::string &stmt, int64_t tile) {
        pres::Set pts;
        for (const auto &piece :
             r.extensionSchedules.at(stmt).pieces())
            pts = pts.unite(pres::Set(piece.fixParam("N", 32)
                                          .fixInDim(0, tile)
                                          .range()));
        return pts.enumerateTuple(stmt, {}).size();
    };
    EXPECT_EQ(tilePoints("S1", 1), 9u);
    EXPECT_EQ(tilePoints("S0", 1), 10u);
}

TEST(Compose, DeadStoresDetectedWhenProducerOvercomputes)
{
    // S0 writes A[0..2N), but the live-out only reads A[0..N):
    // the union of extension tiles is a strict subset of S0's domain
    // (fine-grained dead code elimination, Sec. IV-C).
    ProgramBuilder b("dce");
    b.param("N", 16);
    b.tensor("A", {"2*N"}, TensorKind::Temp);
    b.tensor("B", {"N"}, TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < 2*N }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::lit(1.0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N }")
        .reads("A", "{ S1[i] -> A[i] }")
        .writes("B", "{ S1[i] -> B[i] }")
        .body(ir::loadAcc(0))
        .group(1);
    Program p = b.build();
    auto r = runOurs(p, {4}, schedule::FusionPolicy::Min).composed;
    ASSERT_EQ(r.fusedIntermediates,
              (std::vector<std::string>{"S0"}));
    EXPECT_TRUE(r.deadCodeEliminated);
}

/** Two live-outs sharing one producer (Fig. 6). */
Program
sharedProducer(bool disjoint)
{
    ProgramBuilder b("shared");
    b.param("N", 16);
    b.tensor("A", {"2*N + 1"}, TensorKind::Temp);
    b.tensor("B", {"N"}, TensorKind::Output);
    b.tensor("C", {"N"}, TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i <= 2*N }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::lit(1.0))
        .group(0);
    // op1 reads A[0..N).
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N }")
        .reads("A", "{ S1[i] -> A[i] }")
        .writes("B", "{ S1[i] -> B[i] }")
        .body(ir::loadAcc(0))
        .group(1);
    // op2 reads A[N..2N) when disjoint, A[0..N) otherwise.
    b.statement("S2")
        .domain("[N] -> { S2[i] : 0 <= i < N }")
        .reads("A", disjoint ? "[N] -> { S2[i] -> A[i + N] }"
                             : "{ S2[i] -> A[i] }")
        .writes("C", "{ S2[i] -> C[i] }")
        .body(ir::loadAcc(0))
        .group(2);
    return b.build();
}

TEST(Compose, SharedProducerWithDisjointUsesIsFusedIntoBoth)
{
    Program p = sharedProducer(true);
    auto r = runOurs(p, {4}, schedule::FusionPolicy::Min).composed;
    // op0' fused into op1's tiles, op0'' into op2's (Fig. 6(b)).
    EXPECT_EQ(r.fusedIntermediates,
              (std::vector<std::string>{"S0", "S0"}));
    EXPECT_EQ(r.skippedStatements,
              (std::vector<std::string>{"S0"}));
    // No statement is computed redundantly, and the extension union
    // covers A[0..2N) which is a strict subset of S0's domain
    // (A[2N] is never read): dead store elimination kicks in.
    EXPECT_TRUE(r.deadCodeEliminated);
    EXPECT_EQ(r.spaces.size(), 2u);
}

TEST(Compose, SharedProducerWithOverlappingUsesIsNotFused)
{
    Program p = sharedProducer(false);
    auto r = runOurs(p, {4}, schedule::FusionPolicy::Min).composed;
    // Fusing would recompute the intersection: rejected (Sec. IV-C).
    EXPECT_TRUE(r.fusedIntermediates.empty());
    EXPECT_TRUE(r.skippedStatements.empty());
    EXPECT_EQ(r.spaces.size(), 3u);
}

TEST(Compose, UntilableLiveOutStillFusesWithoutTiling)
{
    // Live-out is a serial scan (no parallel dims): not tilable, but
    // the empty-domain extension schedule still fuses the producer
    // (the paper's equake case, Sec. VI-A).
    ProgramBuilder b("untilable");
    b.param("N", 16);
    b.tensor("A", {"N"}, TensorKind::Temp);
    b.tensor("B", {"N + 1"}, TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < N }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::lit(3.0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 1 <= i <= N }")
        .reads("B", "{ S1[i] -> B[i - 1] }")
        .reads("A", "{ S1[i] -> A[i - 1] }")
        .writes("B", "{ S1[i] -> B[i] }")
        .body(ir::bin(ir::BinOp::Add, ir::loadAcc(0), ir::loadAcc(1)))
        .group(1);
    Program p = b.build();
    auto r = runOurs(p, {4}, schedule::FusionPolicy::Min).composed;
    EXPECT_EQ(r.tiledLiveOuts, 0u);
    ASSERT_EQ(r.fusedIntermediates,
              (std::vector<std::string>{"S0"}));
    // Extension input tuple has zero dimensions.
    const pres::Map &h = r.extensionSchedules.at("S0");
    ASSERT_FALSE(h.pieces().empty());
    EXPECT_EQ(h.pieces()[0].space().numIn(), 0u);
}

TEST_F(ConvCompose, CompileTimeIsRecorded)
{
    EXPECT_GT(result_.compileMs, 0.0);
}

} // namespace
} // namespace core
} // namespace polyfuse
