/**
 * @file
 * Tests for the PolyMage-style tile-size auto-tuner -- both search
 * drivers (exhaustive oracle and model-guided), the extent-blind
 * shape fingerprint and near-miss seeding, the version-2 tuning
 * store -- and a parser round-trip property: parse(str(set)) must
 * equal the set.
 */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "ir/fingerprint.hh"
#include "perfmodel/autotune.hh"
#include "perfmodel/model.hh"
#include "perfmodel/search.hh"
#include "perfmodel/tune_db.hh"
#include "pres/parser.hh"
#include "support/logging.hh"
#include "workloads/conv2d.hh"
#include "workloads/pipelines.hh"
#include "workloads/polybench.hh"

namespace polyfuse {
namespace {

TEST(Autotune, PicksAFeasibleSizeAndBeatsTheWorstCandidate)
{
    ir::Program p = workloads::makeConv2D({64, 64, 5, 5});
    auto g = deps::DependenceGraph::compute(p);
    auto init = [&](exec::Buffers &b) {
        b.fillPattern(p.tensorId("A"), 7);
        b.fillPattern(p.tensorId("B"), 13);
    };
    perfmodel::AutotuneOptions opts;
    opts.candidates = {4, 8, 16, 32};
    opts.dims = 2;
    auto r = perfmodel::autotuneTileSizes(p, g, init, opts);
    ASSERT_EQ(r.tileSizes.size(), 2u);
    EXPECT_EQ(r.evaluated, 16u);
    for (int64_t s : r.tileSizes) {
        EXPECT_GE(s, 4);
        EXPECT_LE(s, 32);
    }
    EXPECT_GT(r.modeledMs, 0.0);
}

TEST(Autotune, PrunesCandidatesBeyondTheIterationSpace)
{
    ir::Program p = workloads::makeConv2D({16, 16, 3, 3});
    auto g = deps::DependenceGraph::compute(p);
    auto init = [&](exec::Buffers &b) {
        b.fillPattern(p.tensorId("A"), 7);
        b.fillPattern(p.tensorId("B"), 13);
    };
    perfmodel::AutotuneOptions opts;
    opts.candidates = {8, 512};
    opts.dims = 2;
    auto r = perfmodel::autotuneTileSizes(p, g, init, opts);
    EXPECT_EQ(r.evaluated, 1u); // only {8, 8} is feasible
    EXPECT_EQ(r.tileSizes, (std::vector<int64_t>{8, 8}));
}

TEST(Autotune, RejectsEmptyConfiguration)
{
    ir::Program p = workloads::makeConv2D({16, 16, 3, 3});
    auto g = deps::DependenceGraph::compute(p);
    perfmodel::AutotuneOptions opts;
    opts.dims = 0;
    EXPECT_THROW(perfmodel::autotuneTileSizes(
                     p, g, [](exec::Buffers &) {}, opts),
                 FatalError);
}

void
convInit(const ir::Program &p, exec::Buffers &b)
{
    b.fillPattern(p.tensorId("A"), 7);
    b.fillPattern(p.tensorId("B"), 13);
}

TEST(Autotune, GuidedPrunesAndIsDeterministicAcrossJobs)
{
    ir::Program p = workloads::makeConv2D({64, 64, 3, 3});
    auto g = deps::DependenceGraph::compute(p);
    auto init = [&](exec::Buffers &b) { convInit(p, b); };
    perfmodel::AutotuneOptions opts;
    opts.searchMode = perfmodel::SearchMode::Guided;
    auto seq = perfmodel::autotuneTileSizes(p, g, init, opts);
    ASSERT_EQ(seq.tileSizes.size(), 2u);
    EXPECT_GT(seq.evaluated, 0u);
    EXPECT_LT(seq.evaluated, seq.totalCandidates);
    EXPECT_EQ(seq.pruned, seq.totalCandidates - seq.evaluated);
    EXPECT_EQ(seq.mode, perfmodel::SearchMode::Guided);

    // The winner must be identical for any job count: rounds reduce
    // in ranking order after the pool drains.
    opts.jobs = 4;
    auto par = perfmodel::autotuneTileSizes(p, g, init, opts);
    EXPECT_EQ(par.tileSizes, seq.tileSizes);
    EXPECT_EQ(par.evaluated, seq.evaluated);
    EXPECT_DOUBLE_EQ(par.modeledMs, seq.modeledMs);
}

TEST(Autotune, ParallelSweepReportsCacheCounters)
{
    // The jobs > 1 path used to evaluate with thread-default
    // contexts and silently report zero cache traffic; per-worker
    // counters are now aggregated into the result.
    ir::Program p = workloads::makeConv2D({64, 64, 3, 3});
    auto g = deps::DependenceGraph::compute(p);
    auto init = [&](exec::Buffers &b) { convInit(p, b); };
    perfmodel::AutotuneOptions opts;
    opts.candidates = {8, 16, 32};
    opts.jobs = 4;
    auto r = perfmodel::autotuneTileSizes(p, g, init, opts);
    EXPECT_EQ(r.evaluated, 9u);
    EXPECT_GT(r.cacheHits + r.cacheMisses, 0u);
}

TEST(Autotune, GuidedStaysWithinTheDocumentedOracleBound)
{
    // The registry-sweep form of this gate (every workload, default
    // ladder) lives in bench_autotune; here a representative pair
    // keeps the suite fast while still failing on a broken model.
    struct Case
    {
        ir::Program p;
        unsigned dims;
    };
    std::vector<Case> cases;
    cases.push_back({workloads::makeConv2D({64, 64, 3, 3}), 2});
    cases.push_back({workloads::make2mm(64, 64, 64, 64), 2});
    for (auto &c : cases) {
        auto g = deps::DependenceGraph::compute(c.p);
        auto init = [&](exec::Buffers &b) {
            for (size_t t = 0; t < c.p.tensors().size(); ++t)
                if (c.p.tensor(t).kind != ir::TensorKind::Temp)
                    b.fillPattern(t, 7 + unsigned(t));
        };
        perfmodel::AutotuneOptions opts;
        opts.dims = c.dims;
        opts.searchMode = perfmodel::SearchMode::Guided;
        opts.compareOracle = true;
        auto r = perfmodel::autotuneTileSizes(c.p, g, init, opts);
        EXPECT_GT(r.oracleMs, 0.0) << c.p.name();
        // The documented bound: guided's winner within 5% modeledMs
        // of the exhaustive oracle.
        EXPECT_LE(r.qualityGapPct, 5.0) << c.p.name();
        EXPECT_LT(r.evaluated, r.totalCandidates) << c.p.name();
    }
}

TEST(Autotune, TuningKeyIsStableAcrossSearchModes)
{
    // Guided and exhaustive answer the same question, so either's
    // stored winner must serve both: the exact key may not depend
    // on the search mode or its knobs.
    ir::Program p = workloads::makeConv2D({32, 32, 3, 3});
    perfmodel::AutotuneOptions a;
    perfmodel::AutotuneOptions b;
    b.searchMode = perfmodel::SearchMode::Guided;
    b.searchTopK = 7;
    b.compareOracle = true;
    b.jobs = 8;
    EXPECT_EQ(perfmodel::tuningKey(p, a).hex(),
              perfmodel::tuningKey(p, b).hex());
    EXPECT_EQ(perfmodel::tuningShapeKey(p, a).hex(),
              perfmodel::tuningShapeKey(p, b).hex());
    // A changed ladder re-tunes in both layers.
    b.candidates = {4, 8};
    EXPECT_NE(perfmodel::tuningKey(p, a).hex(),
              perfmodel::tuningKey(p, b).hex());
    EXPECT_NE(perfmodel::tuningShapeKey(p, a).hex(),
              perfmodel::tuningShapeKey(p, b).hex());
}

TEST(Autotune, ShapeFingerprintIsExtentBlindButStructureBound)
{
    ir::Program small = workloads::makeConv2D({32, 32, 3, 3});
    ir::Program large = workloads::makeConv2D({64, 64, 3, 3});
    ir::Program other = workloads::makeConv2D({32, 32, 5, 5});
    auto shape = [](const ir::Program &p) {
        pres::Fingerprinter fp;
        ir::mixProgramShape(fp, p);
        return fp.fingerprint().hex();
    };
    auto full = [](const ir::Program &p) {
        pres::Fingerprinter fp;
        ir::mixProgram(fp, p);
        return fp.fingerprint().hex();
    };
    // Same structure at different sizes: same shape, different full.
    EXPECT_EQ(shape(small), shape(large));
    EXPECT_NE(full(small), full(large));
    // Different kernel size is a different *structure* here (the
    // conv builder bakes KH/KW into domains as parameter values --
    // but the parameter count and names match, so only the values
    // differ... which the shape layer ignores): the shape matches,
    // the exact key separates them.
    EXPECT_EQ(shape(small), shape(other));
    EXPECT_NE(full(small), full(other));
    // A genuinely different pipeline never shares the shape.
    ir::Program unsharp = workloads::makeUnsharpMask({32, 32});
    EXPECT_NE(shape(small), shape(unsharp));
    // The shape stream is tagged: it can never equal a full stream.
    EXPECT_NE(shape(small), full(small));
}

TEST(Autotune, NearMissSeedsTheSearchAndExactKeyStillWins)
{
    std::string path =
        testing::TempDir() + "polyfuse_autotune_nearmiss.json";
    std::remove(path.c_str());
    ir::Program at48 = workloads::makeConv2D({48, 48, 3, 3});
    ir::Program at64 = workloads::makeConv2D({64, 64, 3, 3});
    {
        perfmodel::TuneDb db(path);
        auto tune = [&](ir::Program &p) {
            auto g = deps::DependenceGraph::compute(p);
            auto init = [&](exec::Buffers &b) { convInit(p, b); };
            perfmodel::AutotuneOptions opts;
            opts.searchMode = perfmodel::SearchMode::Guided;
            opts.db = &db;
            return perfmodel::autotuneTileSizes(p, g, init, opts);
        };
        auto cold = tune(at48);
        EXPECT_FALSE(cold.warmStart);
        EXPECT_FALSE(cold.seededFromShape);
        EXPECT_GT(cold.evaluated, 0u);

        // Same structure, different extents: the shape key seeds
        // the ranking and the seeded run measures fewer candidates.
        auto seeded = tune(at64);
        EXPECT_FALSE(seeded.warmStart);
        EXPECT_TRUE(seeded.seededFromShape);
        EXPECT_GT(seeded.evaluated, 0u);
        EXPECT_LT(seeded.evaluated, cold.evaluated);

        // The exact key still wins: re-tuning the original sizes is
        // a full warm start, no search at all.
        auto warm = tune(at48);
        EXPECT_TRUE(warm.warmStart);
        EXPECT_EQ(warm.evaluated, 0u);
        EXPECT_EQ(warm.tileSizes, cold.tileSizes);

        // And the extent-scaled program now warm-starts too (its
        // own exact entry was stored by the seeded search).
        auto warm64 = tune(at64);
        EXPECT_TRUE(warm64.warmStart);
        EXPECT_EQ(warm64.tileSizes, seeded.tileSizes);
    }
    std::remove(path.c_str());
}

TEST(TuneDbV2, ModelFitAndShapeEntriesRoundTrip)
{
    std::string path =
        testing::TempDir() + "polyfuse_tunedb_v2.json";
    std::remove(path.c_str());
    pres::Fingerprinter fp;
    fp.mix("v2-round-trip");
    perfmodel::ModelFit fit;
    fit.cCompute = 1.25;
    fit.cMem = 0.5;
    fit.cTraffic = 2.0;
    fit.cTile = 0.125;
    fit.samples = 40;
    {
        perfmodel::TuneDb db(path);
        perfmodel::TuneEntry e;
        e.tiles = {32, 64};
        e.modeledMs = 1.5;
        e.evaluated = 4;
        e.kind = "shape";
        db.put(fp.fingerprint(), e);
        db.setModelFit(fit);
        ASSERT_TRUE(db.save());
    }
    perfmodel::TuneDb db(path);
    EXPECT_EQ(db.lastLoadDropped(), 0u);
    perfmodel::ModelFit back;
    ASSERT_TRUE(db.modelFit(&back));
    EXPECT_DOUBLE_EQ(back.cCompute, fit.cCompute);
    EXPECT_DOUBLE_EQ(back.cMem, fit.cMem);
    EXPECT_DOUBLE_EQ(back.cTraffic, fit.cTraffic);
    EXPECT_DOUBLE_EQ(back.cTile, fit.cTile);
    EXPECT_EQ(back.samples, fit.samples);
    perfmodel::TuneEntry got;
    ASSERT_TRUE(db.find(fp.fingerprint(), &got));
    EXPECT_EQ(got.kind, "shape");
    EXPECT_EQ(got.tiles, (std::vector<int64_t>{32, 64}));
    std::remove(path.c_str());
}

TEST(TuneDbV2, LoadsVersionOneStoresBackwardCompatibly)
{
    std::string path =
        testing::TempDir() + "polyfuse_tunedb_v1compat.json";
    std::remove(path.c_str());
    // Fabricate a legacy version-1 file byte-for-byte: no model
    // section, no kind fields, and version-1 checksums (which
    // "exact" records still use).
    pres::Fingerprinter fp;
    fp.mix("v1-legacy-record");
    std::string hex = fp.fingerprint().hex();
    perfmodel::TuneEntry e;
    e.tiles = {16, 16};
    e.modeledMs = 0.25;
    e.evaluated = 9;
    std::string text =
        "{\"version\": 1, \"entries\": [{\"fp\": \"" + hex +
        "\", \"strategy\": \"ours\", \"tiles\": [16, 16], "
        "\"tier\": \"bytecode\", \"modeledMs\": 0.250000, "
        "\"evaluated\": 9, \"crc\": \"" +
        perfmodel::checksumHex(perfmodel::recordChecksum(hex, e)) +
        "\"}]}\n";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs(text.c_str(), f);
        std::fclose(f);
    }
    perfmodel::TuneDb db(path);
    EXPECT_EQ(db.lastLoadDropped(), 0u);
    EXPECT_EQ(db.size(), 1u);
    perfmodel::TuneEntry got;
    ASSERT_TRUE(db.find(fp.fingerprint(), &got));
    EXPECT_EQ(got.kind, "exact");
    EXPECT_EQ(got.tiles, (std::vector<int64_t>{16, 16}));
    perfmodel::ModelFit fit;
    EXPECT_FALSE(db.modelFit(&fit)); // v1 carries no calibration
    // The next save() upgrades in place; the record must survive.
    ASSERT_TRUE(db.save());
    perfmodel::TuneDb db2(path);
    EXPECT_EQ(db2.size(), 1u);
    EXPECT_TRUE(db2.find(fp.fingerprint(), &got));
    std::remove(path.c_str());
}

TEST(TuneDbV2, DropsACorruptModelSectionButKeepsEntries)
{
    std::string path =
        testing::TempDir() + "polyfuse_tunedb_badmodel.json";
    std::remove(path.c_str());
    pres::Fingerprinter fp;
    fp.mix("entry-behind-bad-model");
    {
        perfmodel::TuneDb db(path);
        perfmodel::TuneEntry e;
        e.tiles = {8, 8};
        db.put(fp.fingerprint(), e);
        perfmodel::ModelFit fit = perfmodel::defaultModelFit();
        fit.samples = 12;
        db.setModelFit(fit);
        ASSERT_TRUE(db.save());
    }
    // Flip a digit inside the model section only.
    std::string text;
    {
        std::ifstream f(path);
        std::ostringstream ss;
        ss << f.rdbuf();
        text = ss.str();
    }
    size_t pos = text.find("\"samples\": 12");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 13, "\"samples\": 13");
    {
        std::ofstream f(path, std::ios::trunc);
        f << text;
    }
    perfmodel::TuneDb db(path);
    perfmodel::ModelFit fit;
    EXPECT_FALSE(db.modelFit(&fit)); // checksum mismatch: dropped
    EXPECT_EQ(db.size(), 1u);        // the entry survived
    perfmodel::TuneEntry got;
    EXPECT_TRUE(db.find(fp.fingerprint(), &got));
    std::remove(path.c_str());
}

/** parse(str(s)) == s over assorted sets. */
class StrRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(StrRoundTrip, ParseOfStrEqualsOriginal)
{
    pres::BasicSet s = pres::parseBasicSet(GetParam());
    pres::BasicSet back = pres::parseBasicSet(s.str());
    EXPECT_TRUE(s == back) << s.str() << " vs " << back.str();
}

INSTANTIATE_TEST_SUITE_P(
    Sets, StrRoundTrip,
    ::testing::Values(
        "[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }",
        "{ S[i] : 2i >= 3 and i <= 9 }",
        "[H, KH] -> { S2[h, kh] : 0 <= h <= H - KH and "
        "0 <= kh < KH }",
        "{ T[o0, o1, p] : 4o0 <= p < 4o0 + 4 and 0 <= o1 < 3 }",
        "{ S[] }",
        "[N] -> { X[i] : -3 <= i < 2*N - 7 }"));

} // namespace
} // namespace polyfuse
