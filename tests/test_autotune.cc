/**
 * @file
 * Tests for the PolyMage-style tile-size auto-tuner and a parser
 * round-trip property: parse(str(set)) must equal the set.
 */

#include <gtest/gtest.h>

#include "perfmodel/autotune.hh"
#include "pres/parser.hh"
#include "support/logging.hh"
#include "workloads/conv2d.hh"
#include "workloads/pipelines.hh"

namespace polyfuse {
namespace {

TEST(Autotune, PicksAFeasibleSizeAndBeatsTheWorstCandidate)
{
    ir::Program p = workloads::makeConv2D({64, 64, 5, 5});
    auto g = deps::DependenceGraph::compute(p);
    auto init = [&](exec::Buffers &b) {
        b.fillPattern(p.tensorId("A"), 7);
        b.fillPattern(p.tensorId("B"), 13);
    };
    perfmodel::AutotuneOptions opts;
    opts.candidates = {4, 8, 16, 32};
    opts.dims = 2;
    auto r = perfmodel::autotuneTileSizes(p, g, init, opts);
    ASSERT_EQ(r.tileSizes.size(), 2u);
    EXPECT_EQ(r.evaluated, 16u);
    for (int64_t s : r.tileSizes) {
        EXPECT_GE(s, 4);
        EXPECT_LE(s, 32);
    }
    EXPECT_GT(r.modeledMs, 0.0);
}

TEST(Autotune, PrunesCandidatesBeyondTheIterationSpace)
{
    ir::Program p = workloads::makeConv2D({16, 16, 3, 3});
    auto g = deps::DependenceGraph::compute(p);
    auto init = [&](exec::Buffers &b) {
        b.fillPattern(p.tensorId("A"), 7);
        b.fillPattern(p.tensorId("B"), 13);
    };
    perfmodel::AutotuneOptions opts;
    opts.candidates = {8, 512};
    opts.dims = 2;
    auto r = perfmodel::autotuneTileSizes(p, g, init, opts);
    EXPECT_EQ(r.evaluated, 1u); // only {8, 8} is feasible
    EXPECT_EQ(r.tileSizes, (std::vector<int64_t>{8, 8}));
}

TEST(Autotune, RejectsEmptyConfiguration)
{
    ir::Program p = workloads::makeConv2D({16, 16, 3, 3});
    auto g = deps::DependenceGraph::compute(p);
    perfmodel::AutotuneOptions opts;
    opts.dims = 0;
    EXPECT_THROW(perfmodel::autotuneTileSizes(
                     p, g, [](exec::Buffers &) {}, opts),
                 FatalError);
}

/** parse(str(s)) == s over assorted sets. */
class StrRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(StrRoundTrip, ParseOfStrEqualsOriginal)
{
    pres::BasicSet s = pres::parseBasicSet(GetParam());
    pres::BasicSet back = pres::parseBasicSet(s.str());
    EXPECT_TRUE(s == back) << s.str() << " vs " << back.str();
}

INSTANTIATE_TEST_SUITE_P(
    Sets, StrRoundTrip,
    ::testing::Values(
        "[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }",
        "{ S[i] : 2i >= 3 and i <= 9 }",
        "[H, KH] -> { S2[h, kh] : 0 <= h <= H - KH and "
        "0 <= kh < KH }",
        "{ T[o0, o1, p] : 4o0 <= p < 4o0 + 4 and 0 <= o1 < 3 }",
        "{ S[] }",
        "[N] -> { X[i] : -3 <= i < 2*N - 7 }"));

} // namespace
} // namespace polyfuse
