/**
 * @file
 * Tests for memory-based dependence analysis on the Fig. 1(a)
 * convolution and hand-built mini programs.
 */

#include <gtest/gtest.h>

#include "deps/dependences.hh"
#include "deps/tile_graph.hh"
#include "workloads/conv2d.hh"
#include "workloads/polybench.hh"

namespace polyfuse {
namespace deps {
namespace {

using ir::L;
using ir::ProgramBuilder;
using ir::S;
using ir::TensorKind;

class ConvDeps : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prog_ = workloads::makeConv2D({6, 6, 3, 3});
        graph_ = DependenceGraph::compute(prog_);
    }

    ir::Program prog_;
    DependenceGraph graph_;
};

TEST_F(ConvDeps, FlowFromQuantizationToReduction)
{
    int s0 = prog_.statementId("S0");
    int s2 = prog_.statementId("S2");
    auto d = graph_.between(s0, s2);
    bool found_flow = false;
    for (const auto *dep : d)
        if (dep->kind == DepKind::Flow &&
            dep->tensor == prog_.tensorId("A"))
            found_flow = true;
    EXPECT_TRUE(found_flow);
    // No dependence in the other direction (S2 never writes A).
    for (const auto *dep : graph_.between(s2, s0))
        EXPECT_NE(dep->kind, DepKind::Flow);
}

TEST_F(ConvDeps, GroupGraphMatchesPaper)
{
    // Group 0 {S0} feeds group 1 {S1,S2}; group 1 feeds group 2 {S3}.
    EXPECT_TRUE(graph_.groupDependsOn(1, 0));
    EXPECT_TRUE(graph_.groupDependsOn(2, 1));
    EXPECT_FALSE(graph_.groupDependsOn(0, 1));
    EXPECT_FALSE(graph_.groupDependsOn(0, 2));
    // S0 does not feed S3 directly (S3 only touches C).
    EXPECT_FALSE(graph_.groupDependsOn(2, 0));
}

TEST_F(ConvDeps, InitBeforeReductionInSameNest)
{
    int s1 = prog_.statementId("S1");
    int s2 = prog_.statementId("S2");
    // S1 writes C, S2 reads and writes C: flow S1 -> S2 must exist.
    bool found = false;
    for (const auto *dep : graph_.between(s1, s2))
        if (dep->kind == DepKind::Flow)
            found = true;
    EXPECT_TRUE(found);
}

TEST_F(ConvDeps, ReductionSelfDependence)
{
    int s2 = prog_.statementId("S2");
    auto self = graph_.between(s2, s2);
    EXPECT_FALSE(self.empty());
}

TEST_F(ConvDeps, StencilDistancesOverHW)
{
    // Flow S0 -> S2 via A: S2(h, w, ...) reads A(h+kh, w+kw) written
    // by S0(h+kh, w+kw). Distance over (h, w) is -(kh), -(kw):
    // range [-2, 0] each for KH = KW = 3.
    int s0 = prog_.statementId("S0");
    int s2 = prog_.statementId("S2");
    const Dependence *flow = nullptr;
    for (const auto *dep : graph_.between(s0, s2))
        if (dep->kind == DepKind::Flow)
            flow = dep;
    ASSERT_NE(flow, nullptr);
    auto dist = graph_.bandDistances(*flow, {0, 1}, {0, 1});
    ASSERT_EQ(dist.size(), 2u);
    ASSERT_TRUE(dist[0].bounded);
    EXPECT_EQ(dist[0].min, -2);
    EXPECT_EQ(dist[0].max, 0);
    ASSERT_TRUE(dist[1].bounded);
    EXPECT_EQ(dist[1].min, -2);
    EXPECT_EQ(dist[1].max, 0);
}

TEST_F(ConvDeps, PointwiseDistancesAreZero)
{
    // Flow S2 -> S3 via C is pointwise on (h, w).
    int s2 = prog_.statementId("S2");
    int s3 = prog_.statementId("S3");
    const Dependence *flow = nullptr;
    for (const auto *dep : graph_.between(s2, s3))
        if (dep->kind == DepKind::Flow)
            flow = dep;
    ASSERT_NE(flow, nullptr);
    auto dist = graph_.bandDistances(*flow, {0, 1}, {0, 1});
    ASSERT_TRUE(dist[0].bounded);
    EXPECT_EQ(dist[0].min, 0);
    EXPECT_EQ(dist[0].max, 0);
    EXPECT_EQ(dist[1].min, 0);
    EXPECT_EQ(dist[1].max, 0);
}

TEST(BeforeMap, CrossGroupIsTotal)
{
    ir::Program p = workloads::makeConv2D({6, 6, 3, 3});
    pres::Map before =
        beforeMap(p, p.statementId("S0"), p.statementId("S3"));
    ASSERT_EQ(before.pieces().size(), 1u);
    // Universe relation: no constraints after simplification.
    EXPECT_TRUE(before.pieces()[0].constraints().empty());
    // And the reverse is empty.
    EXPECT_TRUE(
        beforeMap(p, p.statementId("S3"), p.statementId("S0")).empty());
}

TEST(BeforeMap, SameNestUsesSeqAndLoops)
{
    ir::Program p = workloads::makeConv2D({6, 6, 3, 3});
    int s1 = p.statementId("S1");
    int s2 = p.statementId("S2");
    pres::Map before = beforeMap(p, s1, s2);
    // S1(h,w) before S2(h',w',kh,kw) iff (h,w) lexle (h',w') --
    // carried pieces at h and w plus the equal piece (seq 0 < 1).
    EXPECT_EQ(before.pieces().size(), 3u);

    pres::Map rev = beforeMap(p, s2, s1);
    // S2 before S1 only on strictly earlier (h, w): 2 carried pieces.
    EXPECT_EQ(rev.pieces().size(), 2u);
}

TEST(BeforeMap, SelfIsStrictLexOrder)
{
    ir::Program p = workloads::makeConv2D({6, 6, 3, 3});
    int s2 = p.statementId("S2");
    pres::Map before = beforeMap(p, s2, s2);
    // Strict lex order over 4 loops: 4 carried pieces, no equal piece.
    EXPECT_EQ(before.pieces().size(), 4u);
}

TEST(Deps, WriteAfterWriteIsOutput)
{
    ProgramBuilder b("waw");
    b.param("N", 8);
    b.tensor("A", {"N"}, TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < N }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::lit(0.0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N }")
        .writes("A", "{ S1[i] -> A[i] }")
        .body(ir::lit(1.0))
        .group(1);
    auto g = DependenceGraph::compute(b.build());
    bool found = false;
    for (const auto &d : g.all())
        if (d.kind == DepKind::Output && d.src == 0 && d.dst == 1)
            found = true;
    EXPECT_TRUE(found);
}

TEST(Deps, AntiDependenceDetected)
{
    // S0 reads A[i+1], S1 writes A[i]: anti S0 -> S1.
    ProgramBuilder b("anti");
    b.param("N", 8);
    b.tensor("A", {"N + 1"}, TensorKind::Input);
    b.tensor("B", {"N"}, TensorKind::Output);
    b.tensor("A2", {"N"}, TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < N }")
        .reads("A", "{ S0[i] -> A[i + 1] }")
        .writes("B", "{ S0[i] -> B[i] }")
        .body(ir::loadAcc(0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N }")
        .writes("A", "{ S1[i] -> A[i] }")
        .body(ir::lit(2.0))
        .group(1);
    auto g = DependenceGraph::compute(b.build());
    bool found = false;
    for (const auto &d : g.all())
        if (d.kind == DepKind::Anti &&
            d.src == 0 && d.dst == 1)
            found = true;
    EXPECT_TRUE(found);
}

TEST(Deps, DisjointAccessesProduceNoDependence)
{
    // S0 writes A[0..N), S1 reads A[N..2N): no overlap.
    ProgramBuilder b("disjoint");
    b.param("N", 8);
    b.tensor("A", {"2*N"}, TensorKind::Temp);
    b.tensor("B", {"N"}, TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < N }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::lit(1.0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N }")
        .reads("A", "[N] -> { S1[i] -> A[i + N] }")
        .writes("B", "{ S1[i] -> B[i] }")
        .body(ir::loadAcc(0))
        .group(1);
    auto g = DependenceGraph::compute(b.build());
    EXPECT_TRUE(g.between(0, 1).empty());
}

// ------------------------------------------------------------------
// tileGraph: projecting statement dependences onto tile coordinates.
// ------------------------------------------------------------------

/** One band over both dims of statement 0, identity mapping. */
TileBandDesc
band2d(int64_t t0, int64_t t1, int stmt = 0)
{
    TileBandDesc d;
    d.id = 0;
    d.tileSizes = {t0, t1};
    d.coincident = {false, false};
    d.members.push_back({stmt, {0u, 1u}, {0, 0}});
    return d;
}

TEST(TileGraph, PointwiseBandIsFullyParallel)
{
    // Pointwise producer/consumer at distance (0,0): every tile
    // dependence stays intra-tile.
    ProgramBuilder b("pw");
    b.param("N", 16);
    b.tensor("A", {"N", "N"}, TensorKind::Temp);
    b.tensor("B", {"N", "N"}, TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i, j] : 0 <= i < N and 0 <= j < N }")
        .writes("A", "{ S0[i, j] -> A[i, j] }")
        .body(ir::lit(1.0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i, j] : 0 <= i < N and 0 <= j < N }")
        .reads("A", "{ S1[i, j] -> A[i, j] }")
        .writes("B", "{ S1[i, j] -> B[i, j] }")
        .body(ir::loadAcc(0))
        .group(0);
    ir::Program p = b.build();
    auto g = DependenceGraph::compute(p);

    TileBandDesc d = band2d(4, 4);
    d.members.push_back({1, {0u, 1u}, {0, 0}});
    auto r = tileGraph(g, {d});
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].cls, TileBandClass::FullyParallel);
    EXPECT_TRUE(r[0].deltas.empty());
    EXPECT_GT(r[0].depsProjected, 0u);
}

TEST(TileGraph, SeidelIsWavefrontWithUnitStencil)
{
    ir::Program p = workloads::makeSeidel(32, 32);
    auto g = DependenceGraph::compute(p);
    auto r = tileGraph(g, {band2d(8, 8)});
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].cls, TileBandClass::Wavefront);
    // Distances (1,0), (0,1), (1,1) with T=8 each project to the
    // unit box; sorted lex.
    std::vector<std::vector<int64_t>> want = {
        {0, 1}, {1, 0}, {1, 1}};
    EXPECT_EQ(r[0].deltas, want);
}

TEST(TileGraph, DistanceProjectionIsTight)
{
    // Distance exactly one tile size projects to exactly delta 1
    // (not [0,1] slack): floorDiv(8,8) == ceilDiv(8,8) == 1.
    ProgramBuilder b("shift8");
    b.param("N", 64);
    b.tensor("A", {"N + 8"}, TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < N }")
        .reads("A", "{ S0[i] -> A[i] }")
        .writes("A", "{ S0[i] -> A[i + 8] }")
        .body(ir::loadAcc(0))
        .group(0);
    ir::Program p = b.build();
    auto g = DependenceGraph::compute(p);
    TileBandDesc d;
    d.id = 0;
    d.tileSizes = {8};
    d.coincident = {false};
    d.members.push_back({0, {0u}, {0}});
    auto r = tileGraph(g, {d});
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].cls, TileBandClass::Wavefront);
    std::vector<std::vector<int64_t>> want = {{1}};
    EXPECT_EQ(r[0].deltas, want);
}

TEST(TileGraph, ExtraStatementThroughNonLocalTensorIsSerial)
{
    // An extension-fused statement with no band coordinates whose
    // dependence flows through a DRAM tensor cannot be ordered by
    // the tile DAG: the band must stay serial. The same dependence
    // through a tile-local scratchpad is harmless.
    ir::Program p = workloads::makeSeidel(32, 32);
    auto g = DependenceGraph::compute(p);

    TileBandDesc d = band2d(8, 8);
    d.extraStmts = {0}; // stmt 0 also runs without coordinates
    auto serial = tileGraph(g, {d});
    ASSERT_EQ(serial.size(), 1u);
    EXPECT_EQ(serial[0].cls, TileBandClass::Serial);
    EXPECT_FALSE(serial[0].note.empty());

    d.localTensors = {0}; // ...unless tensor A is tile-local
    auto local = tileGraph(g, {d});
    ASSERT_EQ(local.size(), 1u);
    EXPECT_NE(local[0].cls, TileBandClass::Serial);
    EXPECT_GT(local[0].depsLocal, 0u);
}

TEST(TileGraph, OversizedStencilDegradesToSerial)
{
    ir::Program p = workloads::makeSeidel(64, 64);
    auto g = DependenceGraph::compute(p);
    TileGraphOptions o;
    o.maxDeltas = 1; // seidel needs 3
    auto r = tileGraph(g, {band2d(8, 8)}, o);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].cls, TileBandClass::Serial);
    EXPECT_FALSE(r[0].note.empty());
}

} // namespace
} // namespace deps
} // namespace polyfuse
