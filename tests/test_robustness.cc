/**
 * @file
 * Robustness tests: resource budgets, cooperative cancellation, the
 * strategy fallback chain, the fault-injection harness, batch
 * isolation, and the thread pool's exception containment.
 *
 * The acceptance bar (ISSUE 3): with an artificially tiny budget,
 * every registry workload under every strategy must still compile to
 * a correct program via the fallback chain -- correct meaning the
 * executor produces the same live-out buffers as an unguarded build.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/batch.hh"
#include "driver/pipeline.hh"
#include "driver/registry.hh"
#include "exec/engine.hh"
#include "exec/executor.hh"
#include "exec/native.hh"
#include "pres/fm.hh"
#include "pres/parser.hh"
#include "support/budget.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "workloads/conv2d.hh"
#include "workloads/equake.hh"
#include "workloads/pipelines.hh"

namespace polyfuse {
namespace driver {
namespace {

ir::Program
smallConv()
{
    return workloads::makeConv2D({16, 16, 3, 3});
}

ir::Program
smallHarris()
{
    workloads::PipelineConfig cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    return workloads::makeHarris(cfg);
}

/** Fixture that guarantees failpoints never leak between tests. */
class Robustness : public ::testing::Test
{
  protected:
    void SetUp() override { failpoints::clearAll(); }
    void TearDown() override { failpoints::clearAll(); }
};

// ---------------------------------------------------------------
// Budget guards in the FM engine.
// ---------------------------------------------------------------

TEST_F(Robustness, DefaultBudgetIsUnlimited)
{
    Budget b;
    EXPECT_TRUE(b.unlimited());
    b.fmEliminations = 1;
    EXPECT_FALSE(b.unlimited());
    Budget w;
    w.wallMs = 5.0;
    EXPECT_FALSE(w.unlimited());
}

TEST_F(Robustness, UnlimitedBudgetNeverTrips)
{
    ir::Program p = smallConv();
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    opts.tileSizes = {8, 8};
    CompileContext ctx; // all-zero budget
    CompilationState st = Pipeline(opts).run(p, ctx);
    EXPECT_FALSE(st.downgraded());
    EXPECT_EQ(st.effectiveStrategy, Strategy::Ours);
    EXPECT_TRUE(st.fallbackTrail.empty());
    // No "Fallback" pass when nothing was downgraded.
    EXPECT_EQ(st.stats.passes().size(), Pipeline::passNames().size());
}

TEST_F(Robustness, FmEliminationCeilingThrows)
{
    ir::Program p = smallConv();
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    opts.tileSizes = {8, 8};
    opts.budgetFallback = false;
    CompileContext ctx;
    ctx.budget.fmEliminations = 1;
    try {
        Pipeline(opts).run(p, ctx);
        FAIL() << "expected BudgetExceeded";
    } catch (const BudgetExceeded &e) {
        EXPECT_NE(std::string(e.what()).find("FM eliminations"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(Robustness, WallDeadlineThrows)
{
    ir::Program p = smallConv();
    PipelineOptions opts;
    opts.budgetFallback = false;
    CompileContext ctx;
    ctx.budget.wallMs = 1e-6; // expired by the first check
    try {
        Pipeline(opts).run(p, ctx);
        FAIL() << "expected BudgetExceeded";
    } catch (const BudgetExceeded &e) {
        EXPECT_NE(std::string(e.what()).find("wall deadline"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(Robustness, LiveRowAndAllocCeilingsThrow)
{
    ir::Program p = smallConv();
    PipelineOptions opts;
    opts.budgetFallback = false;
    {
        CompileContext ctx;
        ctx.budget.fmLiveRows = 1;
        EXPECT_THROW(Pipeline(opts).run(p, ctx), BudgetExceeded);
    }
    {
        CompileContext ctx;
        ctx.budget.allocBytes = 1;
        EXPECT_THROW(Pipeline(opts).run(p, ctx), BudgetExceeded);
    }
    {
        CompileContext ctx;
        ctx.budget.fmRows = 1;
        EXPECT_THROW(Pipeline(opts).run(p, ctx), BudgetExceeded);
    }
}

TEST_F(Robustness, BudgetWindowResetsOnRearm)
{
    pres::fm::PresCtx ctx;
    Budget b;
    b.fmEliminations = 1;

    auto oneElimination = [&] {
        // x0 >= 0 and x0 <= 3 over columns [x0, const].
        std::vector<pres::Constraint> rows;
        rows.emplace_back(false, std::vector<int64_t>{1, 0});
        rows.emplace_back(false, std::vector<int64_t>{-1, 3});
        bool exact = true;
        pres::fm::eliminateCol(ctx, rows, 0, exact);
    };

    ctx.armBudget(b);
    oneElimination(); // delta 1 == limit: fine
    EXPECT_THROW(oneElimination(), BudgetExceeded); // delta 2 > 1
    ctx.armBudget(b); // fresh window: baselines resnapshotted
    oneElimination();
    ctx.disarmBudget();
    oneElimination(); // unguarded again
    oneElimination();
}

TEST_F(Robustness, CheckBudgetHonorsCancelToken)
{
    pres::fm::PresCtx ctx;
    CancelToken token;
    ctx.cancel = &token;
    pres::fm::checkBudget(ctx, "test.site"); // no throw
    token.cancel();
    try {
        pres::fm::checkBudget(ctx, "test.site");
        FAIL() << "expected BudgetExceeded";
    } catch (const BudgetExceeded &e) {
        EXPECT_NE(std::string(e.what()).find("cancelled at"),
                  std::string::npos);
    }
}

TEST_F(Robustness, CancelTokenChains)
{
    CancelToken parent, child;
    child.chainTo(&parent);
    EXPECT_FALSE(child.cancelled());
    parent.cancel();
    EXPECT_TRUE(child.cancelled());
    EXPECT_TRUE(parent.cancelled());
    child.reset(); // own flag only; the parent still cancels it
    EXPECT_TRUE(child.cancelled());
    parent.reset();
    EXPECT_FALSE(child.cancelled());
}

// ---------------------------------------------------------------
// The fallback chain.
// ---------------------------------------------------------------

TEST_F(Robustness, FallbackChainIsDeterministic)
{
    using V = std::vector<Strategy>;
    EXPECT_EQ(fallbackChain(Strategy::Ours),
              (V{Strategy::Ours, Strategy::Hybrid, Strategy::MinFuse,
                 Strategy::Naive}));
    EXPECT_EQ(fallbackChain(Strategy::MaxFuse),
              (V{Strategy::MaxFuse, Strategy::Hybrid,
                 Strategy::MinFuse, Strategy::Naive}));
    EXPECT_EQ(fallbackChain(Strategy::Hybrid),
              (V{Strategy::Hybrid, Strategy::MinFuse,
                 Strategy::Naive}));
    EXPECT_EQ(fallbackChain(Strategy::MinFuse),
              (V{Strategy::MinFuse, Strategy::Naive}));
    EXPECT_EQ(fallbackChain(Strategy::Naive), (V{Strategy::Naive}));
}

TEST_F(Robustness, TinyBudgetFallsBackAndRecordsTrail)
{
    ir::Program p = smallConv();
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    opts.tileSizes = {8, 8};
    CompileContext ctx;
    ctx.budget.fmEliminations = 1; // trips in ComputeDeps every time
    CompilationState st = Pipeline(opts).run(p, ctx);

    // Every guarded rung fails, so the unguarded naive reserve wins.
    EXPECT_TRUE(st.downgraded());
    EXPECT_EQ(st.requestedStrategy, Strategy::Ours);
    EXPECT_EQ(st.effectiveStrategy, Strategy::Naive);
    ASSERT_EQ(st.fallbackTrail.size(), 4u);
    EXPECT_EQ(st.fallbackTrail[0].find("ours: "), 0u)
        << st.fallbackTrail[0];
    EXPECT_EQ(st.fallbackTrail[3].find("naive: "), 0u);

    // The downgrade is visible in PassStats (and thus batch JSON).
    const PassStat *fb = st.stats.find("Fallback");
    ASSERT_NE(fb, nullptr);
    EXPECT_EQ(fb->counter("downgrades", 0), 4);
    EXPECT_EQ(st.stats.passes().size(),
              Pipeline::passNames().size() + 1);
}

TEST_F(Robustness, ComposeFailpointDowngradesOneRung)
{
    // Injected exhaustion inside core::composeFrom only: the first
    // fallback rung (hybridfuse) never calls compose, so it wins.
    failpoints::set("core.compose", failpoints::Action::Budget);
    ir::Program p = smallHarris();
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    opts.tileSizes = {8, 8};
    CompileContext ctx;
    CompilationState st = Pipeline(opts).run(p, ctx);
    EXPECT_EQ(st.effectiveStrategy, Strategy::Hybrid);
    ASSERT_EQ(st.fallbackTrail.size(), 1u);
    EXPECT_EQ(st.fallbackTrail[0].find("ours: "), 0u);
}

TEST_F(Robustness, NoFallbackFailsInsteadOfDowngrading)
{
    failpoints::set("core.compose", failpoints::Action::Budget);
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    opts.budgetFallback = false;
    CompileContext ctx;
    ir::Program p = smallConv();
    EXPECT_THROW(Pipeline(opts).run(p, ctx), BudgetExceeded);
}

TEST_F(Robustness, CancellationIsNeverRetried)
{
    ir::Program p = smallConv();
    PipelineOptions opts;
    opts.strategy = Strategy::Ours; // fallback enabled by default
    CompileContext ctx;
    ctx.cancel.cancel();
    // A cancelled context must not burn the fallback chain: the run
    // rethrows instead of degrading to naive.
    EXPECT_THROW(Pipeline(opts).run(p, ctx), BudgetExceeded);
}

/** Fill every input (and output, for read-modify-write kernels);
 *  the idiom of test_workloads' differential check. */
void
fillInputs(const ir::Program &p, exec::Buffers &buf)
{
    if (p.name() == "equake") {
        workloads::initEquakeInputs(p, buf, 11);
        return;
    }
    for (size_t t = 0; t < p.tensors().size(); ++t) {
        if (p.tensor(t).kind != ir::TensorKind::Temp)
            buf.fillPattern(t, 1000 + t);
        // Image pipelines expect values in [0, 1].
        if (p.tensor(t).kind == ir::TensorKind::Input)
            for (auto &v : buf.data(t))
                v = std::abs(v);
    }
}

/** Live-out buffer contents after executing @p st over fresh
 *  deterministically filled buffers. */
std::vector<std::vector<double>>
liveOutsAfterRun(const ir::Program &p, const CompilationState &st)
{
    exec::Buffers bufs(p);
    fillInputs(p, bufs);
    exec::run(p, st.ast, bufs);
    std::vector<std::vector<double>> out;
    for (size_t t = 0; t < p.tensors().size(); ++t)
        if (p.tensorLiveOut(int(t)))
            out.push_back(bufs.data(int(t)));
    return out;
}

void
expectNear(const std::vector<std::vector<double>> &a,
           const std::vector<std::vector<double>> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t t = 0; t < a.size(); ++t) {
        ASSERT_EQ(a[t].size(), b[t].size()) << "tensor " << t;
        for (size_t i = 0; i < a[t].size(); ++i)
            ASSERT_NEAR(a[t][i], b[t][i], 1e-9)
                << "tensor " << t << " elem " << i;
    }
}

TEST_F(Robustness, TinyBudgetStillCompilesEveryRegistryWorkload)
{
    // The acceptance bar: every workload x strategy, budget too small
    // for any real schedule, must still deliver a correct program via
    // the fallback chain. Every tiny-budget compile lands on an
    // effectively-naive program, so numeric equivalence is checked
    // against one unguarded naive build per workload, and only for
    // the two interesting requests -- Ours (the longest chain) and
    // Naive (the guarded-attempt-then-reserve path). Executing all
    // eight requests would re-prove the same program repeatedly and
    // makes the sanitizer gates (check_tsan/check_asan) too slow.
    for (const auto &w : workloadRegistry()) {
        WorkloadParams params = w.defaults;
        params.rows = std::min<int64_t>(params.rows, 32);
        params.cols = std::min<int64_t>(params.cols, 32);
        ir::Program p = w.make(params);

        PipelineOptions refOpts;
        refOpts.strategy = Strategy::Naive;
        refOpts.tileSizes = w.defaultTiles;
        CompileContext unguarded;
        CompilationState ref = Pipeline(refOpts).run(p, unguarded);
        EXPECT_FALSE(ref.downgraded());
        const auto refOuts = liveOutsAfterRun(p, ref);

        for (Strategy strategy : allStrategies()) {
            SCOPED_TRACE(std::string(w.name) + "/" +
                         strategyName(strategy));
            PipelineOptions opts;
            opts.strategy = strategy;
            opts.tileSizes = w.defaultTiles;

            CompileContext tiny;
            tiny.budget.fmEliminations = 1;
            CompilationState st = Pipeline(opts).run(p, tiny);
            ASSERT_NE(st.ast, nullptr);
            EXPECT_EQ(st.effectiveStrategy, Strategy::Naive);
            if (strategy != Strategy::Naive) {
                EXPECT_TRUE(st.downgraded());
            }

            if (strategy == Strategy::Ours ||
                strategy == Strategy::Naive) {
                expectNear(liveOutsAfterRun(p, st), refOuts);
            }
        }
    }
}

// ---------------------------------------------------------------
// The fault-injection harness itself.
// ---------------------------------------------------------------

TEST_F(Robustness, DisarmedFailpointsAreNoops)
{
    EXPECT_EQ(failpoints::armedCount(), 0u);
    failpoints::hit("never.armed");
    EXPECT_NO_THROW(pres::parseSet("{ A[i] : 0 <= i < 4 }"));
}

TEST_F(Robustness, EveryActionThrowsItsErrorType)
{
    const std::string text = "{ A[i] : 0 <= i < 4 }";
    failpoints::set("pres.parse", failpoints::Action::Fatal);
    EXPECT_THROW(pres::parseSet(text), FatalError);
    failpoints::set("pres.parse", failpoints::Action::Panic);
    EXPECT_THROW(pres::parseSet(text), PanicError);
    failpoints::set("pres.parse", failpoints::Action::Budget);
    EXPECT_THROW(pres::parseSet(text), BudgetExceeded);
    failpoints::set("pres.parse", failpoints::Action::BadAlloc);
    EXPECT_THROW(pres::parseSet(text), std::bad_alloc);
    failpoints::set("pres.parse", failpoints::Action::Error);
    EXPECT_THROW(pres::parseSet(text), std::runtime_error);
    failpoints::set("pres.parse", failpoints::Action::Off);
    EXPECT_NO_THROW(pres::parseSet(text));
}

TEST_F(Robustness, SkipCountDelaysFiring)
{
    const std::string text = "{ A[i] : 0 <= i < 4 }";
    failpoints::set("pres.parse", failpoints::Action::Fatal, 2);
    EXPECT_NO_THROW(pres::parseSet(text)); // skip 1
    EXPECT_NO_THROW(pres::parseSet(text)); // skip 2
    EXPECT_THROW(pres::parseSet(text), FatalError);
    EXPECT_THROW(pres::parseSet(text), FatalError); // keeps firing
}

TEST_F(Robustness, SpecStringsParse)
{
    std::string err;
    EXPECT_TRUE(failpoints::parseSpec(
        "pres.parse=fatal:2; core.compose=budget", &err))
        << err;
    EXPECT_EQ(failpoints::armedCount(), 2u);
    auto sites = failpoints::armedSites();
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_EQ(sites[0], "core.compose");
    EXPECT_EQ(sites[1], "pres.parse");

    // `off` clears through the spec grammar too.
    EXPECT_TRUE(failpoints::parseSpec("pres.parse=off", &err)) << err;
    EXPECT_EQ(failpoints::armedCount(), 1u);

    EXPECT_FALSE(failpoints::parseSpec("nonsense", &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(failpoints::parseSpec("a.site=explode", &err));
    EXPECT_FALSE(failpoints::parseSpec("a.site=fatal:xyz", &err));

    failpoints::clearAll();
    EXPECT_EQ(failpoints::armedCount(), 0u);
}

TEST_F(Robustness, FmFailpointsReachTheEngine)
{
    failpoints::set("pres.eliminateCol", failpoints::Action::Budget);
    PipelineOptions opts;
    opts.budgetFallback = false;
    CompileContext ctx;
    ir::Program p = smallConv();
    EXPECT_THROW(Pipeline(opts).run(p, ctx), BudgetExceeded);
    failpoints::clearAll();

    failpoints::set("codegen.generate", failpoints::Action::BadAlloc);
    CompileContext ctx2;
    EXPECT_THROW(Pipeline(opts).run(p, ctx2), std::bad_alloc);
}

// ---------------------------------------------------------------
// Batch isolation, deadlines, exit codes.
// ---------------------------------------------------------------

std::vector<BatchJob>
fourConvJobs()
{
    std::vector<BatchJob> jobs;
    for (int i = 0; i < 4; ++i) {
        BatchJob job;
        job.name = "conv2d/job" + std::to_string(i);
        job.make = [] { return smallConv(); };
        job.options.strategy = Strategy::Ours;
        job.options.tileSizes = {8, 8};
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TEST_F(Robustness, PoisonedJobFailsAloneInBatch)
{
    failpoints::set("driver.job.conv2d/job2",
                    failpoints::Action::Fatal);
    BatchOptions bopts;
    bopts.jobsN = 2; // pool path
    BatchResult batch = compileBatch(fourConvJobs(), bopts);
    ASSERT_EQ(batch.jobs.size(), 4u);
    EXPECT_EQ(batch.failed(), 1u);
    for (size_t i = 0; i < batch.jobs.size(); ++i)
        EXPECT_EQ(batch.jobs[i].ok, i != 2) << i;
    EXPECT_FALSE(batch.jobs[2].error.empty());

    // Exit codes: failures are nonzero with or without --strict.
    EXPECT_EQ(batchExitCode(batch, false), 1);
    EXPECT_EQ(batchExitCode(batch, true), 1);

    // The failure is visible in the JSON report.
    std::string json = batch.json();
    EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
    EXPECT_NE(json.find("\"error\""), std::string::npos);
}

TEST_F(Robustness, TimeoutDowngradesButSucceeds)
{
    BatchOptions bopts;
    bopts.jobsN = 1;
    bopts.timeoutMs = 1e-6; // every guarded attempt expires
    BatchResult batch = compileBatch(fourConvJobs(), bopts);
    EXPECT_EQ(batch.failed(), 0u);
    EXPECT_EQ(batch.downgradedCount(), 4u);
    for (const auto &j : batch.jobs) {
        EXPECT_TRUE(j.ok);
        EXPECT_TRUE(j.artifact.downgraded());
        EXPECT_EQ(j.artifact.effectiveStrategy, Strategy::Naive);
    }
    // Downgrades only fail the batch under --strict.
    EXPECT_EQ(batchExitCode(batch, false), 0);
    EXPECT_EQ(batchExitCode(batch, true), 1);

    std::string json = batch.json();
    EXPECT_NE(json.find("\"strategy\": \"ours\""), std::string::npos);
    EXPECT_NE(json.find("\"effective\": \"naive\""),
              std::string::npos);
    EXPECT_NE(json.find("\"downgrades\": 4"), std::string::npos);
    std::string summary = batch.summary();
    EXPECT_NE(summary.find("downgraded to naive"), std::string::npos);
}

TEST_F(Robustness, FailFastCancelsRemainingJobs)
{
    failpoints::set("driver.job.conv2d/job0",
                    failpoints::Action::Error);
    BatchOptions bopts;
    bopts.jobsN = 1; // deterministic order: job0 poisons the rest
    bopts.failFast = true;
    BatchResult batch = compileBatch(fourConvJobs(), bopts);
    EXPECT_EQ(batch.failed(), 4u);
    for (size_t i = 1; i < batch.jobs.size(); ++i)
        EXPECT_NE(batch.jobs[i].error.find("cancelled"),
                  std::string::npos)
            << batch.jobs[i].error;
}

TEST_F(Robustness, ExternalTokenCancelsWholeBatch)
{
    CancelToken token;
    token.cancel();
    BatchOptions bopts;
    bopts.jobsN = 2;
    bopts.cancel = &token;
    BatchResult batch = compileBatch(fourConvJobs(), bopts);
    EXPECT_EQ(batch.failed(), 4u);
    for (const auto &j : batch.jobs)
        EXPECT_NE(j.error.find("cancelled"), std::string::npos);
}

TEST_F(Robustness, BatchBudgetAppliesPerJob)
{
    BatchOptions bopts;
    bopts.jobsN = 2;
    bopts.budget.fmEliminations = 1;
    BatchResult batch = compileBatch(fourConvJobs(), bopts);
    // Per-job windows: every job downgrades independently; none is
    // starved by the others' consumption.
    EXPECT_EQ(batch.failed(), 0u);
    EXPECT_EQ(batch.downgradedCount(), 4u);
}

// ---------------------------------------------------------------
// Native-tier fault injection (exec.native.compile / .dlopen).
// ---------------------------------------------------------------

TEST_F(Robustness, NativeCompileFailpointFallsBackToBytecode)
{
    ir::Program p = smallConv();
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    opts.tileSizes = {8, 8};
    CompilationState st = Pipeline(opts).run(p);

    failpoints::set("exec.native.compile",
                    failpoints::Action::Error);

    // The factory reports the injected failure as a reason, never
    // as an escaped exception.
    exec::NativeKernel k = exec::NativeKernel::compile(p, st.ast);
    EXPECT_FALSE(k.ok());
    EXPECT_NE(k.reason().find("native tier failed"),
              std::string::npos)
        << k.reason();
    // The engine degrades to the bytecode tier and records why...
    exec::Buffers buf(p);
    EXPECT_THROW(k.run(buf), FatalError);
    exec::ExecOptions eopts;
    eopts.tier = exec::Tier::Native;
    exec::ExecResult r = exec::execute(p, st.ast, buf, eopts);
    EXPECT_EQ(r.tier, exec::Tier::Bytecode);
    EXPECT_NE(r.fallbackReason.find("native tier failed"),
              std::string::npos)
        << r.fallbackReason;

    // ...and the fallback run still computes the right buffers.
    exec::Buffers ref(p);
    exec::execute(p, st.ast, ref, {});
    for (size_t t = 0; t < p.tensors().size(); ++t)
        EXPECT_EQ(buf.data(int(t)), ref.data(int(t)));

    // With fallback disabled the condition is a hard error.
    eopts.allowFallback = false;
    EXPECT_THROW(exec::execute(p, st.ast, buf, eopts), FatalError);
}

TEST_F(Robustness, NativeDlopenFailpointFallsBackToBytecode)
{
    if (!exec::NativeKernel::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain on this machine";

    ir::Program p = smallConv();
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    opts.tileSizes = {8, 8};
    CompilationState st = Pipeline(opts).run(p);

    // The compile (cc fork) succeeds; the dlopen step then fails.
    failpoints::set("exec.native.dlopen", failpoints::Action::Error);

    exec::NativeKernel k = exec::NativeKernel::compile(p, st.ast);
    EXPECT_FALSE(k.ok());
    EXPECT_NE(k.reason().find("native tier failed"),
              std::string::npos)
        << k.reason();

    exec::Buffers buf(p);
    exec::ExecOptions eopts;
    eopts.tier = exec::Tier::Native;
    exec::ExecResult r = exec::execute(p, st.ast, buf, eopts);
    EXPECT_EQ(r.tier, exec::Tier::Bytecode);
    EXPECT_FALSE(r.fallbackReason.empty());

    // Disarmed again, the native tier comes back.
    failpoints::clearAll();
    exec::ExecResult ok = exec::execute(p, st.ast, buf, eopts);
    EXPECT_EQ(ok.tier, exec::Tier::Native);
    EXPECT_TRUE(ok.fallbackReason.empty());
}

TEST_F(Robustness, ParSpawnFailpointDegradesToSequentialNative)
{
    if (!exec::NativeKernel::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain on this machine";

    ir::Program p = smallHarris();
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    CompilationState st = Pipeline(opts).run(p);

    // Sequential-native reference buffers.
    exec::Buffers ref(p);
    fillInputs(p, ref);
    exec::ExecOptions seq;
    seq.tier = exec::Tier::Native;
    exec::ExecResult rs = exec::execute(p, st.ast, ref, seq);
    ASSERT_EQ(rs.tier, exec::Tier::Native) << rs.fallbackReason;

    // A spawn failure is planned around *before* execution: the
    // run lands one rung down (sequential native), records the
    // typed reason, and the buffers are bit-identical.
    failpoints::set("exec.native.par.spawn",
                    failpoints::Action::Error);
    exec::Buffers buf(p);
    fillInputs(p, buf);
    exec::ExecOptions eopts;
    eopts.tier = exec::Tier::Native;
    eopts.par = exec::ParStrategy::Static;
    eopts.threads = 2;
    eopts.tileBands = &st.tileBands;
    exec::ExecResult r = exec::execute(p, st.ast, buf, eopts);
    EXPECT_EQ(r.tier, exec::Tier::Native) << r.fallbackReason;
    EXPECT_NE(r.parFallbackReason.find("exec.native.par.spawn"),
              std::string::npos)
        << r.parFallbackReason;
    EXPECT_EQ(r.par.threads, 0u);
    for (size_t t = 0; t < p.tensors().size(); ++t)
        EXPECT_EQ(buf.data(int(t)), ref.data(int(t)));

    // Disarmed, the tile-team comes back.
    failpoints::clearAll();
    exec::Buffers again(p);
    fillInputs(p, again);
    exec::ExecResult ok = exec::execute(p, st.ast, again, eopts);
    EXPECT_EQ(ok.tier, exec::Tier::Native) << ok.fallbackReason;
    EXPECT_TRUE(ok.parFallbackReason.empty())
        << ok.parFallbackReason;
    EXPECT_EQ(ok.par.threads, 2u);
}

TEST_F(Robustness, SimdSelectFailpointFallsBackToScalar)
{
    ir::Program p = smallHarris();
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    CompilationState st = Pipeline(opts).run(p);

    // Scalar reference buffers.
    exec::Buffers ref(p);
    fillInputs(p, ref);
    exec::execute(p, st.ast, ref, {});

    // The admission failpoint forces the scalar path: the run
    // degrades before any loop executes, records the typed
    // reason, and stays bit-identical.
    failpoints::set("exec.simd.select", failpoints::Action::Error);
    exec::Buffers buf(p);
    fillInputs(p, buf);
    exec::ExecOptions eopts;
    eopts.simd = exec::SimdMode::On;
    exec::ExecResult r = exec::execute(p, st.ast, buf, eopts);
    EXPECT_EQ(r.tier, exec::Tier::Bytecode);
    EXPECT_EQ(r.simd, exec::SimdMode::Off);
    EXPECT_NE(r.simdFallbackReason.find("exec.simd.select"),
              std::string::npos)
        << r.simdFallbackReason;
    EXPECT_EQ(r.stats.simdLoops, 0u);
    EXPECT_EQ(r.stats.simdLanes, 0u);
    for (size_t t = 0; t < p.tensors().size(); ++t)
        EXPECT_EQ(buf.data(int(t)), ref.data(int(t)));

    // Disarmed, the vector path engages again.
    failpoints::clearAll();
    exec::Buffers again(p);
    fillInputs(p, again);
    exec::ExecResult ok = exec::execute(p, st.ast, again, eopts);
    EXPECT_EQ(ok.simd, exec::SimdMode::On);
    EXPECT_GT(ok.stats.simdLoops, 0u);
    for (size_t t = 0; t < p.tensors().size(); ++t)
        EXPECT_EQ(again.data(int(t)), ref.data(int(t)));
}

// ---------------------------------------------------------------
// Thread pool exception containment.
// ---------------------------------------------------------------

TEST_F(Robustness, PoolCapturesEscapedExceptions)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("boom-1"); });
    pool.submit([&] { ++ran; });
    pool.submit([] { throw std::runtime_error("boom-2"); });
    pool.submit([] { throw 42; }); // non-std escapee
    pool.submit([&] { ++ran; });
    pool.wait();

    EXPECT_EQ(ran.load(), 2);
    EXPECT_EQ(pool.failureCount(), 3u);
    std::vector<std::string> failures = pool.takeFailures();
    ASSERT_EQ(failures.size(), 3u);
    int boom = 0, nonstd = 0;
    for (const auto &f : failures) {
        if (f.find("boom-") != std::string::npos)
            ++boom;
        if (f.find("non-std exception") != std::string::npos)
            ++nonstd;
    }
    EXPECT_EQ(boom, 2);
    EXPECT_EQ(nonstd, 1);
    EXPECT_EQ(pool.failureCount(), 0u); // takeFailures drained

    // The pool survives and keeps running jobs.
    pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
    EXPECT_EQ(pool.failureCount(), 0u);
}

} // namespace
} // namespace driver
} // namespace polyfuse
