/**
 * @file
 * Tests for multi-level tiling (inner tile band for multi-level
 * hierarchies) and for multi-live-out image programs: two outputs
 * sharing producers through disjoint and overlapping regions.
 */

#include <gtest/gtest.h>

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "exec/executor.hh"
#include "workloads/conv2d.hh"

namespace polyfuse {
namespace core {
namespace {

using schedule::NodeKind;
using schedule::NodePtr;
using schedule::ScheduleTree;

TEST(MultiLevelTiling, PointBandGetsSecondLevel)
{
    ir::Program p = workloads::makeConv2D({64, 64, 3, 3});
    auto g = deps::DependenceGraph::compute(p);
    ComposeOptions opts;
    opts.tileSizes = {32, 32};
    opts.innerTileSizes = {8, 8};
    auto r = compose(p, g, opts);

    // Find the outer tile band: its subtree must contain a second
    // tiled band (the inner level).
    unsigned tiled_bands = 0;
    for (const auto &band : r.tree.allBands())
        if (!band->tileSizes.empty())
            ++tiled_bands;
    EXPECT_EQ(tiled_bands, 2u);
}

TEST(MultiLevelTiling, TwoLevelScheduleIsStillCorrect)
{
    ir::Program p = workloads::makeConv2D({48, 40, 3, 3});
    auto g = deps::DependenceGraph::compute(p);

    auto runTree = [&](const ScheduleTree &t) {
        exec::Buffers buf(p);
        buf.fillPattern(p.tensorId("A"), 7);
        buf.fillPattern(p.tensorId("B"), 13);
        exec::run(p, codegen::generateAst(t), buf);
        return buf.data(p.tensorId("C"));
    };
    auto initial = ScheduleTree::initial(p);
    initial.annotate(g);
    auto ref = runTree(initial);

    ComposeOptions opts;
    opts.tileSizes = {16, 16};
    opts.innerTileSizes = {4, 8};
    auto r = compose(p, g, opts);
    EXPECT_EQ(runTree(r.tree), ref);
}

TEST(MultiLevelTiling, InnerLevelAloneDoesNothingWithoutOuter)
{
    // Untilable live-out: inner sizes are ignored gracefully.
    ir::ProgramBuilder b("scan");
    b.param("N", 32);
    b.tensor("A", {"N"}, ir::TensorKind::Temp);
    b.tensor("B", {"N + 1"}, ir::TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < N }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::lit(1.0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 1 <= i <= N }")
        .reads("B", "{ S1[i] -> B[i - 1] }")
        .reads("A", "{ S1[i] -> A[i - 1] }")
        .writes("B", "{ S1[i] -> B[i] }")
        .body(ir::bin(ir::BinOp::Add, ir::loadAcc(0), ir::loadAcc(1)))
        .group(1);
    ir::Program p = b.build();
    auto g = deps::DependenceGraph::compute(p);
    ComposeOptions opts;
    opts.tileSizes = {8};
    opts.innerTileSizes = {4};
    opts.startup = schedule::FusionPolicy::Min;
    auto r = compose(p, g, opts);
    EXPECT_EQ(r.tiledLiveOuts, 0u);
    for (const auto &band : r.tree.allBands())
        EXPECT_TRUE(band->tileSizes.empty());
}

/**
 * A two-output mini-pipeline: one blurred producer feeding a
 * downsampled thumbnail (top half) and an edge map (bottom half) --
 * disjoint uses, so the producer splits across both live-out spaces
 * (Fig. 6(b)) and both transformed outputs must match the reference.
 */
TEST(MultiLiveOut, DisjointSplitExecutesCorrectly)
{
    ir::ProgramBuilder b("twoout");
    b.param("N", 64);
    b.param("H", 32);
    b.tensor("I", {"N + 2", "N"}, ir::TensorKind::Input);
    b.tensor("Bl", {"N", "N"}, ir::TensorKind::Temp);
    b.tensor("Top", {"H", "N"}, ir::TensorKind::Output);
    b.tensor("Bot", {"H", "N"}, ir::TensorKind::Output);
    b.statement("Sb")
        .domain("[N] -> { Sb[i, j] : 0 <= i < N and 0 <= j < N }")
        .reads("I", "{ Sb[i, j] -> I[i, j] }")
        .reads("I", "{ Sb[i, j] -> I[i + 1, j] }")
        .reads("I", "{ Sb[i, j] -> I[i + 2, j] }")
        .writes("Bl", "{ Sb[i, j] -> Bl[i, j] }")
        .body((ir::loadAcc(0) + ir::loadAcc(1) + ir::loadAcc(2)) *
              ir::lit(1.0 / 3.0))
        .group(0);
    b.statement("St")
        .domain("[H] -> { St[i, j] : 0 <= i < H and 0 <= j < H + H }")
        .reads("Bl", "{ St[i, j] -> Bl[i, j] }")
        .writes("Top", "{ St[i, j] -> Top[i, j] }")
        .body(ir::loadAcc(0) * ir::lit(2.0))
        .group(1);
    b.statement("Sd")
        .domain("[N, H] -> { Sd[i, j] : 0 <= i < H and "
                "0 <= j < N }")
        .reads("Bl", "[H] -> { Sd[i, j] -> Bl[i + H, j] }")
        .writes("Bot", "{ Sd[i, j] -> Bot[i, j] }")
        .body(ir::loadAcc(0) - ir::lit(0.5))
        .group(2);
    ir::Program p = b.build();
    auto g = deps::DependenceGraph::compute(p);

    auto runTrees = [&](const ScheduleTree &t) {
        exec::Buffers buf(p);
        buf.fillPattern(p.tensorId("I"), 5);
        exec::run(p, codegen::generateAst(t), buf);
        return std::make_pair(buf.data(p.tensorId("Top")),
                              buf.data(p.tensorId("Bot")));
    };
    auto initial = ScheduleTree::initial(p);
    initial.annotate(g);
    auto ref = runTrees(initial);

    ComposeOptions opts;
    opts.tileSizes = {16, 16};
    opts.startup = schedule::FusionPolicy::Min;
    auto r = compose(p, g, opts);
    // Producer fused into both live-out spaces (disjoint halves).
    EXPECT_EQ(r.fusedIntermediates.size(), 2u);
    EXPECT_EQ(r.skippedStatements,
              (std::vector<std::string>{"Sb"}));
    auto got = runTrees(r.tree);
    EXPECT_EQ(got.first, ref.first);
    EXPECT_EQ(got.second, ref.second);
}

} // namespace
} // namespace core
} // namespace polyfuse
