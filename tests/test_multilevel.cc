/**
 * @file
 * Tests for multi-level tiling (inner tile band for multi-level
 * hierarchies) and for multi-live-out image programs: two outputs
 * sharing producers through disjoint and overlapping regions. All
 * schedules are compiled through the driver's pass pipeline.
 */

#include <gtest/gtest.h>

#include "driver/pipeline.hh"
#include "exec/executor.hh"
#include "workloads/conv2d.hh"

namespace polyfuse {
namespace core {
namespace {

using schedule::NodeKind;
using schedule::NodePtr;
using schedule::ScheduleTree;

/** Driver run of the composition with two tiling levels. */
driver::CompilationState
runOurs(const ir::Program &p, std::vector<int64_t> tiles,
        std::vector<int64_t> inner = {},
        schedule::FusionPolicy startup = schedule::FusionPolicy::Smart)
{
    driver::PipelineOptions opts;
    opts.strategy = driver::Strategy::Ours;
    opts.tileSizes = std::move(tiles);
    opts.innerTileSizes = std::move(inner);
    opts.startup = startup;
    return driver::Pipeline(opts).run(p);
}

TEST(MultiLevelTiling, PointBandGetsSecondLevel)
{
    ir::Program p = workloads::makeConv2D({64, 64, 3, 3});
    auto r = runOurs(p, {32, 32}, {8, 8}).composed;

    // Find the outer tile band: its subtree must contain a second
    // tiled band (the inner level).
    unsigned tiled_bands = 0;
    for (const auto &band : r.tree.allBands())
        if (!band->tileSizes.empty())
            ++tiled_bands;
    EXPECT_EQ(tiled_bands, 2u);
}

TEST(MultiLevelTiling, TwoLevelScheduleIsStillCorrect)
{
    ir::Program p = workloads::makeConv2D({48, 40, 3, 3});

    auto runAst = [&](const codegen::AstPtr &ast) {
        exec::Buffers buf(p);
        buf.fillPattern(p.tensorId("A"), 7);
        buf.fillPattern(p.tensorId("B"), 13);
        exec::run(p, ast, buf);
        return buf.data(p.tensorId("C"));
    };
    driver::PipelineOptions naive;
    naive.strategy = driver::Strategy::Naive;
    auto ref = runAst(driver::Pipeline(naive).run(p).ast);

    auto state = runOurs(p, {16, 16}, {4, 8});
    EXPECT_EQ(runAst(state.ast), ref);
}

TEST(MultiLevelTiling, InnerLevelAloneDoesNothingWithoutOuter)
{
    // Untilable live-out: inner sizes are ignored gracefully.
    ir::ProgramBuilder b("scan");
    b.param("N", 32);
    b.tensor("A", {"N"}, ir::TensorKind::Temp);
    b.tensor("B", {"N + 1"}, ir::TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < N }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::lit(1.0))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 1 <= i <= N }")
        .reads("B", "{ S1[i] -> B[i - 1] }")
        .reads("A", "{ S1[i] -> A[i - 1] }")
        .writes("B", "{ S1[i] -> B[i] }")
        .body(ir::bin(ir::BinOp::Add, ir::loadAcc(0), ir::loadAcc(1)))
        .group(1);
    ir::Program p = b.build();
    auto r =
        runOurs(p, {8}, {4}, schedule::FusionPolicy::Min).composed;
    EXPECT_EQ(r.tiledLiveOuts, 0u);
    for (const auto &band : r.tree.allBands())
        EXPECT_TRUE(band->tileSizes.empty());
}

/**
 * A two-output mini-pipeline: one blurred producer feeding a
 * downsampled thumbnail (top half) and an edge map (bottom half) --
 * disjoint uses, so the producer splits across both live-out spaces
 * (Fig. 6(b)) and both transformed outputs must match the reference.
 */
TEST(MultiLiveOut, DisjointSplitExecutesCorrectly)
{
    ir::ProgramBuilder b("twoout");
    b.param("N", 64);
    b.param("H", 32);
    b.tensor("I", {"N + 2", "N"}, ir::TensorKind::Input);
    b.tensor("Bl", {"N", "N"}, ir::TensorKind::Temp);
    b.tensor("Top", {"H", "N"}, ir::TensorKind::Output);
    b.tensor("Bot", {"H", "N"}, ir::TensorKind::Output);
    b.statement("Sb")
        .domain("[N] -> { Sb[i, j] : 0 <= i < N and 0 <= j < N }")
        .reads("I", "{ Sb[i, j] -> I[i, j] }")
        .reads("I", "{ Sb[i, j] -> I[i + 1, j] }")
        .reads("I", "{ Sb[i, j] -> I[i + 2, j] }")
        .writes("Bl", "{ Sb[i, j] -> Bl[i, j] }")
        .body((ir::loadAcc(0) + ir::loadAcc(1) + ir::loadAcc(2)) *
              ir::lit(1.0 / 3.0))
        .group(0);
    b.statement("St")
        .domain("[H] -> { St[i, j] : 0 <= i < H and 0 <= j < H + H }")
        .reads("Bl", "{ St[i, j] -> Bl[i, j] }")
        .writes("Top", "{ St[i, j] -> Top[i, j] }")
        .body(ir::loadAcc(0) * ir::lit(2.0))
        .group(1);
    b.statement("Sd")
        .domain("[N, H] -> { Sd[i, j] : 0 <= i < H and "
                "0 <= j < N }")
        .reads("Bl", "[H] -> { Sd[i, j] -> Bl[i + H, j] }")
        .writes("Bot", "{ Sd[i, j] -> Bot[i, j] }")
        .body(ir::loadAcc(0) - ir::lit(0.5))
        .group(2);
    ir::Program p = b.build();

    auto runAst = [&](const codegen::AstPtr &ast) {
        exec::Buffers buf(p);
        buf.fillPattern(p.tensorId("I"), 5);
        exec::run(p, ast, buf);
        return std::make_pair(buf.data(p.tensorId("Top")),
                              buf.data(p.tensorId("Bot")));
    };
    driver::PipelineOptions naive;
    naive.strategy = driver::Strategy::Naive;
    auto ref = runAst(driver::Pipeline(naive).run(p).ast);

    auto state =
        runOurs(p, {16, 16}, {}, schedule::FusionPolicy::Min);
    const auto &r = state.composed;
    // Producer fused into both live-out spaces (disjoint halves).
    EXPECT_EQ(r.fusedIntermediates.size(), 2u);
    EXPECT_EQ(r.skippedStatements,
              (std::vector<std::string>{"Sb"}));
    auto got = runAst(state.ast);
    EXPECT_EQ(got.first, ref.first);
    EXPECT_EQ(got.second, ref.second);
}

} // namespace
} // namespace core
} // namespace polyfuse
