/**
 * @file
 * End-to-end correctness: every scheduling strategy (initial tree,
 * the four fusion heuristics, and the paper's composition with and
 * without memory promotion) must compute bit-identical results on
 * the convolution example and on a stencil chain, matching a
 * hand-written reference.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "exec/executor.hh"
#include "support/logging.hh"
#include "schedule/fusion.hh"
#include "workloads/conv2d.hh"

namespace polyfuse {
namespace exec {
namespace {

using codegen::GenOptions;
using schedule::FusionPolicy;
using schedule::ScheduleTree;

/** Hand-written reference for the Fig. 1(a) program. */
std::vector<double>
convReference(const ir::Program &p, const Buffers &init)
{
    int64_t H = p.paramValue("H"), W = p.paramValue("W");
    int64_t KH = p.paramValue("KH"), KW = p.paramValue("KW");
    std::vector<double> A = init.data(p.tensorId("A"));
    const std::vector<double> &B = init.data(p.tensorId("B"));
    std::vector<double> C((H - KH + 1) * (W - KW + 1), 0.0);
    for (int64_t h = 0; h < H; ++h)
        for (int64_t w = 0; w < W; ++w)
            A[h * W + w] *= 0.5;
    int64_t CW = W - KW + 1;
    for (int64_t h = 0; h <= H - KH; ++h)
        for (int64_t w = 0; w <= W - KW; ++w) {
            C[h * CW + w] = 0.0;
            for (int64_t kh = 0; kh < KH; ++kh)
                for (int64_t kw = 0; kw < KW; ++kw)
                    C[h * CW + w] +=
                        A[(h + kh) * W + (w + kw)] * B[kh * KW + kw];
        }
    for (int64_t h = 0; h <= H - KH; ++h)
        for (int64_t w = 0; w <= W - KW; ++w)
            C[h * CW + w] = std::max(C[h * CW + w], 0.0);
    return C;
}

/** Run @p tree on fresh deterministic inputs; return tensor C. */
std::vector<double>
runTree(const ir::Program &p, const ScheduleTree &tree,
        bool promote = true)
{
    Buffers buffers(p);
    buffers.fillPattern(p.tensorId("A"), 7);
    buffers.fillPattern(p.tensorId("B"), 13);
    GenOptions gopts;
    gopts.promoteIntermediates = promote;
    auto ast = codegen::generateAst(tree, gopts);
    run(p, ast, buffers);
    return buffers.data(p.tensorId("C"));
}

class ConvExec : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prog_ = workloads::makeConv2D({12, 10, 3, 3});
        graph_ = deps::DependenceGraph::compute(prog_);
        Buffers init(prog_);
        init.fillPattern(prog_.tensorId("A"), 7);
        init.fillPattern(prog_.tensorId("B"), 13);
        ref_ = convReference(prog_, init);
    }

    ir::Program prog_;
    deps::DependenceGraph graph_;
    std::vector<double> ref_;
};

TEST_F(ConvExec, InitialTreeMatchesReference)
{
    ScheduleTree t = ScheduleTree::initial(prog_);
    t.annotate(graph_);
    EXPECT_EQ(runTree(prog_, t), ref_);
}

TEST_F(ConvExec, MinfuseMatchesReference)
{
    auto r = applyFusion(prog_, graph_, FusionPolicy::Min);
    EXPECT_EQ(runTree(prog_, r.tree), ref_);
}

TEST_F(ConvExec, SmartfuseMatchesReference)
{
    auto r = applyFusion(prog_, graph_, FusionPolicy::Smart);
    EXPECT_EQ(runTree(prog_, r.tree), ref_);
}

TEST_F(ConvExec, MaxfuseWithShiftsMatchesReference)
{
    auto r = applyFusion(prog_, graph_, FusionPolicy::Max);
    EXPECT_EQ(runTree(prog_, r.tree), ref_);
}

TEST_F(ConvExec, HybridfuseMatchesReference)
{
    auto r = applyFusion(prog_, graph_, FusionPolicy::Hybrid);
    EXPECT_EQ(runTree(prog_, r.tree), ref_);
}

TEST_F(ConvExec, ComposedMatchesReferenceWithPromotion)
{
    core::ComposeOptions opts;
    opts.tileSizes = {4, 4};
    auto r = core::compose(prog_, graph_, opts);
    EXPECT_EQ(runTree(prog_, r.tree, true), ref_);
}

TEST(ExecNoPromotion, IdempotentProducerIsCorrectWithoutScratchpads)
{
    // Promotion may only be disabled for idempotent producers (see
    // GenOptions); a stencil chain whose producer writes A from its
    // inputs (not in place) qualifies.
    ir::ProgramBuilder b("chain");
    b.param("N", 40);
    b.tensor("X", {"N + 1"}, ir::TensorKind::Input);
    b.tensor("A", {"N + 1"}, ir::TensorKind::Temp);
    b.tensor("C", {"N"}, ir::TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i <= N }")
        .reads("X", "{ S0[i] -> X[i] }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::bin(ir::BinOp::Mul, ir::loadAcc(0), ir::lit(2.0)))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N }")
        .reads("A", "{ S1[i] -> A[i] }")
        .reads("A", "{ S1[i] -> A[i + 1] }")
        .writes("C", "{ S1[i] -> C[i] }")
        .body(ir::bin(ir::BinOp::Add, ir::loadAcc(0), ir::loadAcc(1)))
        .group(1);
    ir::Program p = b.build();
    auto g = deps::DependenceGraph::compute(p);
    core::ComposeOptions opts;
    opts.tileSizes = {8};
    opts.startup = schedule::FusionPolicy::Min;
    auto r = core::compose(p, g, opts);
    ASSERT_FALSE(r.fusedIntermediates.empty());

    auto runIt = [&](bool promote) {
        Buffers buf(p);
        buf.fillPattern(p.tensorId("X"), 3);
        GenOptions go;
        go.promoteIntermediates = promote;
        run(p, codegen::generateAst(r.tree, go), buf);
        return buf.data(p.tensorId("C"));
    };
    EXPECT_EQ(runIt(false), runIt(true));
}

TEST_F(ConvExec, ComposedMatchesReferenceWithOddTileSizes)
{
    // Partial tiles at the boundaries.
    core::ComposeOptions opts;
    opts.tileSizes = {5, 3};
    auto r = core::compose(prog_, graph_, opts);
    EXPECT_EQ(runTree(prog_, r.tree, true), ref_);
}

TEST_F(ConvExec, ComposedGpuStyleParallelismMatchesReference)
{
    core::ComposeOptions opts;
    opts.tileSizes = {4, 4};
    opts.targetParallelism = 2;
    auto r = core::compose(prog_, graph_, opts);
    EXPECT_EQ(runTree(prog_, r.tree, true), ref_);
}

TEST_F(ConvExec, StatsCountInstancesAndRecomputation)
{
    // Composed with overlapped tiling executes MORE S0 instances
    // than the original (halo recomputation), while minfuse executes
    // exactly H*W.
    auto minr = applyFusion(prog_, graph_, FusionPolicy::Min);
    Buffers b1(prog_);
    b1.fillPattern(prog_.tensorId("A"), 7);
    b1.fillPattern(prog_.tensorId("B"), 13);
    auto s1 = run(prog_, codegen::generateAst(minr.tree), b1);

    core::ComposeOptions opts;
    opts.tileSizes = {4, 4};
    auto comp = core::compose(prog_, graph_, opts);
    Buffers b2(prog_);
    b2.fillPattern(prog_.tensorId("A"), 7);
    b2.fillPattern(prog_.tensorId("B"), 13);
    auto s2 = run(prog_, codegen::generateAst(comp.tree), b2);

    EXPECT_GT(s2.instances, s1.instances);
    EXPECT_GT(s1.instances, 0u);
    EXPECT_GT(s1.flops, 0.0);
}

TEST_F(ConvExec, TraceHookSeesScratchpadSpaces)
{
    core::ComposeOptions opts;
    opts.tileSizes = {4, 4};
    auto comp = core::compose(prog_, graph_, opts);
    Buffers b(prog_);
    b.fillPattern(prog_.tensorId("A"), 7);
    b.fillPattern(prog_.tensorId("B"), 13);
    int ntensors = prog_.tensors().size();
    uint64_t local_accesses = 0, global_accesses = 0;
    run(prog_, codegen::generateAst(comp.tree), b,
        [&](int space, int64_t, bool) {
            if (space >= ntensors)
                ++local_accesses;
            else
                ++global_accesses;
        });
    // The promoted A is accessed through its scratchpad space.
    EXPECT_GT(local_accesses, 0u);
    EXPECT_GT(global_accesses, 0u);
}

TEST(Buffers, PatternIsDeterministicAndBoundsChecked)
{
    ir::Program p = workloads::makeConv2D({6, 6, 3, 3});
    Buffers a(p), b(p);
    a.fillPattern(0, 42);
    b.fillPattern(0, 42);
    EXPECT_EQ(a.data(0), b.data(0));
    EXPECT_THROW(a.offsetOf(0, {6, 0}), FatalError);
    EXPECT_THROW(a.offsetOf(0, {0, -1}), FatalError);
    EXPECT_EQ(a.offsetOf(0, {1, 2}), 8);
}

} // namespace
} // namespace exec
} // namespace polyfuse
