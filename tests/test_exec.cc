/**
 * @file
 * End-to-end correctness: every scheduling strategy (initial tree,
 * the four fusion heuristics, and the paper's composition with and
 * without memory promotion) must compute bit-identical results on
 * the convolution example and on a stencil chain, matching a
 * hand-written reference.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "driver/pipeline.hh"
#include "driver/registry.hh"
#include "exec/bytecode.hh"
#include "exec/engine.hh"
#include "exec/executor.hh"
#include "exec/native.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"
#include "schedule/fusion.hh"
#include "workloads/conv2d.hh"
#include "workloads/equake.hh"

namespace polyfuse {
namespace exec {
namespace {

using codegen::GenOptions;
using schedule::FusionPolicy;
using schedule::ScheduleTree;

/** Hand-written reference for the Fig. 1(a) program. */
std::vector<double>
convReference(const ir::Program &p, const Buffers &init)
{
    int64_t H = p.paramValue("H"), W = p.paramValue("W");
    int64_t KH = p.paramValue("KH"), KW = p.paramValue("KW");
    std::vector<double> A = init.data(p.tensorId("A"));
    const std::vector<double> &B = init.data(p.tensorId("B"));
    std::vector<double> C((H - KH + 1) * (W - KW + 1), 0.0);
    for (int64_t h = 0; h < H; ++h)
        for (int64_t w = 0; w < W; ++w)
            A[h * W + w] *= 0.5;
    int64_t CW = W - KW + 1;
    for (int64_t h = 0; h <= H - KH; ++h)
        for (int64_t w = 0; w <= W - KW; ++w) {
            C[h * CW + w] = 0.0;
            for (int64_t kh = 0; kh < KH; ++kh)
                for (int64_t kw = 0; kw < KW; ++kw)
                    C[h * CW + w] +=
                        A[(h + kh) * W + (w + kw)] * B[kh * KW + kw];
        }
    for (int64_t h = 0; h <= H - KH; ++h)
        for (int64_t w = 0; w <= W - KW; ++w)
            C[h * CW + w] = std::max(C[h * CW + w], 0.0);
    return C;
}

/** Run @p tree on fresh deterministic inputs; return tensor C. */
std::vector<double>
runTree(const ir::Program &p, const ScheduleTree &tree,
        bool promote = true)
{
    Buffers buffers(p);
    buffers.fillPattern(p.tensorId("A"), 7);
    buffers.fillPattern(p.tensorId("B"), 13);
    GenOptions gopts;
    gopts.promoteIntermediates = promote;
    auto ast = codegen::generateAst(tree, gopts);
    run(p, ast, buffers);
    return buffers.data(p.tensorId("C"));
}

class ConvExec : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prog_ = workloads::makeConv2D({12, 10, 3, 3});
        graph_ = deps::DependenceGraph::compute(prog_);
        Buffers init(prog_);
        init.fillPattern(prog_.tensorId("A"), 7);
        init.fillPattern(prog_.tensorId("B"), 13);
        ref_ = convReference(prog_, init);
    }

    ir::Program prog_;
    deps::DependenceGraph graph_;
    std::vector<double> ref_;
};

TEST_F(ConvExec, InitialTreeMatchesReference)
{
    ScheduleTree t = ScheduleTree::initial(prog_);
    t.annotate(graph_);
    EXPECT_EQ(runTree(prog_, t), ref_);
}

TEST_F(ConvExec, MinfuseMatchesReference)
{
    auto r = applyFusion(prog_, graph_, FusionPolicy::Min);
    EXPECT_EQ(runTree(prog_, r.tree), ref_);
}

TEST_F(ConvExec, SmartfuseMatchesReference)
{
    auto r = applyFusion(prog_, graph_, FusionPolicy::Smart);
    EXPECT_EQ(runTree(prog_, r.tree), ref_);
}

TEST_F(ConvExec, MaxfuseWithShiftsMatchesReference)
{
    auto r = applyFusion(prog_, graph_, FusionPolicy::Max);
    EXPECT_EQ(runTree(prog_, r.tree), ref_);
}

TEST_F(ConvExec, HybridfuseMatchesReference)
{
    auto r = applyFusion(prog_, graph_, FusionPolicy::Hybrid);
    EXPECT_EQ(runTree(prog_, r.tree), ref_);
}

TEST_F(ConvExec, ComposedMatchesReferenceWithPromotion)
{
    core::ComposeOptions opts;
    opts.tileSizes = {4, 4};
    auto r = core::compose(prog_, graph_, opts);
    EXPECT_EQ(runTree(prog_, r.tree, true), ref_);
}

TEST(ExecNoPromotion, IdempotentProducerIsCorrectWithoutScratchpads)
{
    // Promotion may only be disabled for idempotent producers (see
    // GenOptions); a stencil chain whose producer writes A from its
    // inputs (not in place) qualifies.
    ir::ProgramBuilder b("chain");
    b.param("N", 40);
    b.tensor("X", {"N + 1"}, ir::TensorKind::Input);
    b.tensor("A", {"N + 1"}, ir::TensorKind::Temp);
    b.tensor("C", {"N"}, ir::TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i <= N }")
        .reads("X", "{ S0[i] -> X[i] }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(ir::bin(ir::BinOp::Mul, ir::loadAcc(0), ir::lit(2.0)))
        .group(0);
    b.statement("S1")
        .domain("[N] -> { S1[i] : 0 <= i < N }")
        .reads("A", "{ S1[i] -> A[i] }")
        .reads("A", "{ S1[i] -> A[i + 1] }")
        .writes("C", "{ S1[i] -> C[i] }")
        .body(ir::bin(ir::BinOp::Add, ir::loadAcc(0), ir::loadAcc(1)))
        .group(1);
    ir::Program p = b.build();
    auto g = deps::DependenceGraph::compute(p);
    core::ComposeOptions opts;
    opts.tileSizes = {8};
    opts.startup = schedule::FusionPolicy::Min;
    auto r = core::compose(p, g, opts);
    ASSERT_FALSE(r.fusedIntermediates.empty());

    auto runIt = [&](bool promote) {
        Buffers buf(p);
        buf.fillPattern(p.tensorId("X"), 3);
        GenOptions go;
        go.promoteIntermediates = promote;
        run(p, codegen::generateAst(r.tree, go), buf);
        return buf.data(p.tensorId("C"));
    };
    EXPECT_EQ(runIt(false), runIt(true));
}

TEST_F(ConvExec, ComposedMatchesReferenceWithOddTileSizes)
{
    // Partial tiles at the boundaries.
    core::ComposeOptions opts;
    opts.tileSizes = {5, 3};
    auto r = core::compose(prog_, graph_, opts);
    EXPECT_EQ(runTree(prog_, r.tree, true), ref_);
}

TEST_F(ConvExec, ComposedGpuStyleParallelismMatchesReference)
{
    core::ComposeOptions opts;
    opts.tileSizes = {4, 4};
    opts.targetParallelism = 2;
    auto r = core::compose(prog_, graph_, opts);
    EXPECT_EQ(runTree(prog_, r.tree, true), ref_);
}

TEST_F(ConvExec, StatsCountInstancesAndRecomputation)
{
    // Composed with overlapped tiling executes MORE S0 instances
    // than the original (halo recomputation), while minfuse executes
    // exactly H*W.
    auto minr = applyFusion(prog_, graph_, FusionPolicy::Min);
    Buffers b1(prog_);
    b1.fillPattern(prog_.tensorId("A"), 7);
    b1.fillPattern(prog_.tensorId("B"), 13);
    auto s1 = run(prog_, codegen::generateAst(minr.tree), b1);

    core::ComposeOptions opts;
    opts.tileSizes = {4, 4};
    auto comp = core::compose(prog_, graph_, opts);
    Buffers b2(prog_);
    b2.fillPattern(prog_.tensorId("A"), 7);
    b2.fillPattern(prog_.tensorId("B"), 13);
    auto s2 = run(prog_, codegen::generateAst(comp.tree), b2);

    EXPECT_GT(s2.instances, s1.instances);
    EXPECT_GT(s1.instances, 0u);
    EXPECT_GT(s1.flops, 0.0);
}

TEST_F(ConvExec, TraceHookSeesScratchpadSpaces)
{
    core::ComposeOptions opts;
    opts.tileSizes = {4, 4};
    auto comp = core::compose(prog_, graph_, opts);
    Buffers b(prog_);
    b.fillPattern(prog_.tensorId("A"), 7);
    b.fillPattern(prog_.tensorId("B"), 13);
    int ntensors = prog_.tensors().size();
    uint64_t local_accesses = 0, global_accesses = 0;
    run(prog_, codegen::generateAst(comp.tree), b,
        [&](int space, int64_t, bool) {
            if (space >= ntensors)
                ++local_accesses;
            else
                ++global_accesses;
        });
    // The promoted A is accessed through its scratchpad space.
    EXPECT_GT(local_accesses, 0u);
    EXPECT_GT(global_accesses, 0u);
}

// ------------------------------------------------------------------
// Differential suite: every registry workload x every strategy must
// produce bit-identical buffers AND the identical trace sequence on
// the bytecode tier as on the reference interpreter; the native tier
// (when a toolchain is present) must produce bit-identical buffers.
// ------------------------------------------------------------------

/** Trace recorder for the batched sink interface. */
struct RecordingSink final : TraceSink
{
    std::vector<TraceRecord> recs;

    void
    onRecords(const TraceRecord *records, size_t n) override
    {
        recs.insert(recs.end(), records, records + n);
    }
};

/** Reduced problem sizes so the full sweep stays fast (respecting
 *  per-workload alignment requirements). */
driver::WorkloadParams
smallParams(const std::string &name)
{
    if (name == "equake")
        return {96, 6};
    if (name == "convbn")
        return {4, 8};
    if (name == "gemver")
        return {40, 40};
    if (name == "unsharp")
        return {8, 32};
    if (name == "bilateral")
        return {24, 24}; // multiples of 8
    if (name == "interp")
        return {32, 32}; // multiples of 16
    return {20, 20};
}

/** Default tiles of the spec, each clamped to 8 so the reduced
 *  domains still split into several (partial) tiles. */
std::vector<int64_t>
smallTiles(const driver::WorkloadSpec &spec)
{
    std::vector<int64_t> tiles;
    for (int64_t t : spec.defaultTiles)
        tiles.push_back(std::min<int64_t>(t, 8));
    return tiles;
}

void
initInputs(const ir::Program &p, Buffers &buf)
{
    if (p.name() == "equake") {
        // The indirection inputs (COL, RL) need valid indices.
        workloads::initEquakeInputs(p, buf, 11);
        return;
    }
    for (size_t t = 0; t < p.tensors().size(); ++t)
        if (p.tensor(t).kind != ir::TensorKind::Temp)
            buf.fillPattern(t, 1000 + t);
}

class TierDifferential
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TierDifferential, BytecodeMatchesInterpreterExactly)
{
    const driver::WorkloadSpec *spec =
        driver::findWorkload(GetParam());
    ASSERT_NE(spec, nullptr);
    ir::Program p = spec->make(smallParams(spec->name));

    for (driver::Strategy s : driver::allStrategies()) {
        driver::PipelineOptions popts;
        popts.strategy = s;
        popts.tileSizes = smallTiles(*spec);
        auto state = driver::Pipeline(popts).run(p);
        SCOPED_TRACE(std::string(spec->name) + " / " +
                     driver::strategyName(s));

        // Reference interpreter, traced.
        Buffers ref(p);
        initInputs(p, ref);
        std::vector<TraceRecord> ref_trace;
        ExecStats ref_stats =
            run(p, state.ast, ref,
                [&](int space, int64_t off, bool w) {
                    ref_trace.push_back(
                        {off, int32_t(space), uint8_t(w)});
                });

        // Bytecode, traced.
        BytecodeKernel kernel =
            BytecodeKernel::compile(p, state.ast);
        EXPECT_GT(kernel.numInstructions(), 0u);
        Buffers bc(p);
        initInputs(p, bc);
        RecordingSink sink;
        ExecStats bc_stats = kernel.run(bc, sink);

        for (size_t t = 0; t < p.tensors().size(); ++t)
            EXPECT_EQ(ref.data(t), bc.data(t))
                << "tensor " << p.tensor(t).name;

        EXPECT_EQ(ref_stats.instances, bc_stats.instances);
        EXPECT_EQ(ref_stats.loads, bc_stats.loads);
        EXPECT_EQ(ref_stats.stores, bc_stats.stores);
        EXPECT_EQ(ref_stats.guardFails, bc_stats.guardFails);
        EXPECT_EQ(ref_stats.instancesParallel,
                  bc_stats.instancesParallel);

        ASSERT_EQ(ref_trace.size(), sink.recs.size());
        for (size_t i = 0; i < ref_trace.size(); ++i) {
            const TraceRecord &a = ref_trace[i];
            const TraceRecord &b = sink.recs[i];
            ASSERT_TRUE(a.space == b.space &&
                        a.offset == b.offset &&
                        a.isWrite == b.isWrite)
                << "trace record " << i << " differs: ("
                << a.space << "," << a.offset << ","
                << int(a.isWrite) << ") vs (" << b.space << ","
                << b.offset << "," << int(b.isWrite) << ")";
        }

        // The untraced template path must write the same buffers.
        Buffers bc2(p);
        initInputs(p, bc2);
        kernel.run(bc2);
        for (size_t t = 0; t < p.tensors().size(); ++t)
            EXPECT_EQ(bc.data(t), bc2.data(t));
    }
}

TEST_P(TierDifferential, NativeMatchesInterpreterExactly)
{
    if (!NativeKernel::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain on this machine";
    const driver::WorkloadSpec *spec =
        driver::findWorkload(GetParam());
    ASSERT_NE(spec, nullptr);
    ir::Program p = spec->make(smallParams(spec->name));

    driver::PipelineOptions popts;
    popts.strategy = driver::Strategy::Ours;
    popts.tileSizes = smallTiles(*spec);
    auto state = driver::Pipeline(popts).run(p);

    Buffers ref(p);
    initInputs(p, ref);
    run(p, state.ast, ref);

    NativeKernel kernel = NativeKernel::compile(p, state.ast);
    ASSERT_TRUE(kernel.ok()) << kernel.reason();
    Buffers nat(p);
    initInputs(p, nat);
    kernel.run(nat);
    for (size_t t = 0; t < p.tensors().size(); ++t)
        EXPECT_EQ(ref.data(t), nat.data(t))
            << "tensor " << p.tensor(t).name;
}

// ------------------------------------------------------------------
// Parallel runtime: every workload x strategy x {static, graph} x
// {1, 2, 8} threads must be bit-identical to the sequential bytecode
// run -- buffers and stats. (Test names carry "Parallel" so the TSAN
// gate in scripts/check.sh can select the multithreaded subset.)
// ------------------------------------------------------------------

TEST_P(TierDifferential, ParallelMatchesSequentialExactly)
{
    const driver::WorkloadSpec *spec =
        driver::findWorkload(GetParam());
    ASSERT_NE(spec, nullptr);
    ir::Program p = spec->make(smallParams(spec->name));

    for (driver::Strategy s : driver::allStrategies()) {
        driver::PipelineOptions popts;
        popts.strategy = s;
        popts.tileSizes = smallTiles(*spec);
        auto state = driver::Pipeline(popts).run(p);

        Buffers ref(p);
        initInputs(p, ref);
        ExecOptions seq;
        ExecResult rs = execute(p, state.ast, ref, seq);

        for (ParStrategy par : {ParStrategy::Static,
                                ParStrategy::Graph}) {
            for (unsigned threads : {1u, 2u, 8u}) {
                SCOPED_TRACE(std::string(spec->name) + " / " +
                             driver::strategyName(s) + " / " +
                             parStrategyName(par) + " x" +
                             std::to_string(threads));
                Buffers buf(p);
                initInputs(p, buf);
                ExecOptions eo;
                eo.threads = threads;
                eo.par = par;
                eo.tileBands = &state.tileBands;
                ExecResult rp = execute(p, state.ast, buf, eo);
                EXPECT_EQ(rp.tier, Tier::Bytecode);
                EXPECT_TRUE(rp.parFallbackReason.empty())
                    << rp.parFallbackReason;

                for (size_t t = 0; t < p.tensors().size(); ++t)
                    EXPECT_EQ(ref.data(t), buf.data(t))
                        << "tensor " << p.tensor(t).name;
                EXPECT_EQ(rs.stats.instances, rp.stats.instances);
                EXPECT_EQ(rs.stats.instancesParallel,
                          rp.stats.instancesParallel);
                EXPECT_EQ(rs.stats.flops, rp.stats.flops);
                EXPECT_EQ(rs.stats.loads, rp.stats.loads);
                EXPECT_EQ(rs.stats.stores, rp.stats.stores);
                EXPECT_EQ(rs.stats.guardFails,
                          rp.stats.guardFails);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TierDifferential,
    ::testing::Values("conv2d", "bilateral", "camera", "harris",
                      "laplacian", "interp", "unsharp", "equake",
                      "2mm", "gemver", "covariance", "convbn",
                      "seidel"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

/** Compile @p name under @p strategy at a reduced size; out-params
 *  the program and state. */
driver::CompilationState
compileSmall(const char *name, driver::Strategy strategy,
             ir::Program &p)
{
    const driver::WorkloadSpec *spec = driver::findWorkload(name);
    EXPECT_NE(spec, nullptr);
    p = spec->make(smallParams(name));
    driver::PipelineOptions popts;
    popts.strategy = strategy;
    popts.tileSizes = smallTiles(*spec);
    return driver::Pipeline(popts).run(p);
}

// ------------------------------------------------------------------
// Backend registry sweep: every registered backend (tier x par x
// simd) on every registry workload under every strategy must honor
// its numerical contract against the Tier-0 interpreter --
// bit-identical buffers when bitIdentical, else maxAbs within
// maxAbsResidual. (Names carry "Backend" so the TSAN gate in
// scripts/check.sh runs the multithreaded sweep; the registry covers
// the parallel strategies at two thread counts each.)
// ------------------------------------------------------------------

class BackendSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BackendSweep, HonorsNumericalContractOnEveryStrategy)
{
    const driver::WorkloadSpec *spec =
        driver::findWorkload(GetParam());
    ASSERT_NE(spec, nullptr);
    ir::Program p = spec->make(smallParams(spec->name));
    const bool have_cc = NativeKernel::toolchainAvailable();

    for (driver::Strategy s : driver::allStrategies()) {
        driver::PipelineOptions popts;
        popts.strategy = s;
        popts.tileSizes = smallTiles(*spec);
        auto state = driver::Pipeline(popts).run(p);

        Buffers ref(p);
        initInputs(p, ref);
        run(p, state.ast, ref);

        for (const BackendSpec &b : backendRegistry()) {
            if (b.tier == Tier::Native && !have_cc)
                continue;
            SCOPED_TRACE(std::string(spec->name) + " / " +
                         driver::strategyName(s) + " / " + b.name);
            Buffers buf(p);
            initInputs(p, buf);
            ExecOptions eo = backendOptions(b);
            eo.tileBands = &state.tileBands;
            ExecResult r = execute(p, state.ast, buf, eo);
            EXPECT_EQ(r.tier, b.tier) << r.fallbackReason;

            BufferDeviation dev = bufferDeviation(p, ref, buf);
            if (b.bitIdentical)
                EXPECT_TRUE(dev.bitIdentical)
                    << "maxAbs " << dev.maxAbs << ", maxUlp "
                    << dev.maxUlp;
            else
                EXPECT_LE(dev.maxAbs, b.maxAbsResidual);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, BackendSweep,
    ::testing::Values("conv2d", "bilateral", "camera", "harris",
                      "laplacian", "interp", "unsharp", "equake",
                      "2mm", "gemver", "covariance", "convbn",
                      "seidel"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

TEST(BackendRegistry, LookupAndOptionsRoundTrip)
{
    EXPECT_GE(backendRegistry().size(), 10u);
    const BackendSpec *b = findBackend("bytecode-par4-simd");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->tier, Tier::Bytecode);
    EXPECT_EQ(b->par, ParStrategy::Static);
    EXPECT_EQ(b->threads, 4u);
    EXPECT_EQ(b->simd, SimdMode::On);
    ExecOptions eo = backendOptions(*b);
    EXPECT_EQ(eo.tier, b->tier);
    EXPECT_EQ(eo.par, b->par);
    EXPECT_EQ(eo.threads, b->threads);
    EXPECT_EQ(eo.simd, b->simd);
    EXPECT_EQ(findBackend("no-such-backend"), nullptr);

    // Two thread counts per parallel strategy, so the TSAN gate sees
    // distinct interleavings.
    EXPECT_NE(findBackend("bytecode-par2"), nullptr);
    EXPECT_NE(findBackend("bytecode-graph2"), nullptr);
    EXPECT_NE(findBackend("native-par2"), nullptr);
    EXPECT_NE(findBackend("native-par4"), nullptr);
}

TEST(BackendSimd, FastPathEngagesAndReportsLanes)
{
    // harris's elementwise stages are unit-stride single-statement
    // intervals with no same-base loads in vector range: the vector
    // path must actually select (simdLoops > 0), execute whole lane
    // blocks, and still be bit-identical -- a silent always-scalar
    // selection would pass the sweep while measuring nothing. (2mm
    // cannot engage: its k-innermost reductions have a zero-stride
    // store, and its init statements fuse with the k loop.)
    ir::Program p;
    auto state = compileSmall("harris", driver::Strategy::Ours, p);

    Buffers ref(p);
    initInputs(p, ref);
    ExecResult rs = execute(p, state.ast, ref, {});

    Buffers buf(p);
    initInputs(p, buf);
    ExecOptions eo;
    eo.simd = SimdMode::On;
    ExecResult rv = execute(p, state.ast, buf, eo);

    EXPECT_EQ(rv.simd, SimdMode::On);
    EXPECT_TRUE(rv.simdFallbackReason.empty())
        << rv.simdFallbackReason;
    EXPECT_GT(rv.stats.simdLoops, 0u);
    EXPECT_GT(rv.stats.simdLanes, 0u);
    EXPECT_EQ(rv.stats.simdLanes % simdWidth(), 0u);
    EXPECT_EQ(rs.stats.instances, rv.stats.instances);
    EXPECT_EQ(rs.stats.loads, rv.stats.loads);
    EXPECT_EQ(rs.stats.stores, rv.stats.stores);
    for (size_t t = 0; t < p.tensors().size(); ++t)
        EXPECT_EQ(ref.data(t), buf.data(t))
            << "tensor " << p.tensor(t).name;

    // seidel's loop-carried flow dependences must make the per-run
    // dependence check reject the block path lane-for-lane.
    ir::Program sp;
    auto sstate = compileSmall("seidel", driver::Strategy::MinFuse,
                               sp);
    Buffers sref(sp);
    initInputs(sp, sref);
    execute(sp, sstate.ast, sref, {});
    Buffers sbuf(sp);
    initInputs(sp, sbuf);
    ExecResult rsv = execute(sp, sstate.ast, sbuf, eo);
    for (size_t t = 0; t < sp.tensors().size(); ++t)
        EXPECT_EQ(sref.data(t), sbuf.data(t))
            << "tensor " << sp.tensor(t).name;
}

TEST(BackendNativePar, ParallelNativeReportsTeamShape)
{
    if (!NativeKernel::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain on this machine";
    ir::Program p;
    auto state = compileSmall("harris", driver::Strategy::Ours, p);

    Buffers ref(p);
    initInputs(p, ref);
    execute(p, state.ast, ref, {});

    Buffers buf(p);
    initInputs(p, buf);
    ExecOptions eo;
    eo.tier = Tier::Native;
    eo.par = ParStrategy::Static;
    eo.threads = 2;
    eo.tileBands = &state.tileBands;
    ExecResult r = execute(p, state.ast, buf, eo);
    ASSERT_EQ(r.tier, Tier::Native) << r.fallbackReason;
    EXPECT_TRUE(r.parFallbackReason.empty())
        << r.parFallbackReason;
    EXPECT_EQ(r.par.threads, 2u);
    EXPECT_EQ(r.par.strategy, ParStrategy::Static);
    EXPECT_GT(r.par.regionsParallel, 0u);
    for (size_t t = 0; t < p.tensors().size(); ++t)
        EXPECT_EQ(ref.data(t), buf.data(t))
            << "tensor " << p.tensor(t).name;
}

TEST(BackendNativePar, WithoutBandProofNativeStaysSequential)
{
    if (!NativeKernel::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain on this machine";
    ir::Program p;
    auto state = compileSmall("harris", driver::Strategy::Ours, p);
    Buffers buf(p);
    initInputs(p, buf);
    ExecOptions eo;
    eo.tier = Tier::Native;
    eo.par = ParStrategy::Static;
    eo.threads = 4;
    eo.tileBands = nullptr; // no independence proof
    ExecResult r = execute(p, state.ast, buf, eo);
    ASSERT_EQ(r.tier, Tier::Native) << r.fallbackReason;
    EXPECT_EQ(r.par.threads, 0u);
    EXPECT_FALSE(r.parFallbackReason.empty());
}

TEST(BackendDeviation, MeasuresUlpAndAbsDeviation)
{
    ir::Program p;
    compileSmall("conv2d", driver::Strategy::Ours, p);
    Buffers a(p), b(p);
    initInputs(p, a);
    initInputs(p, b);
    EXPECT_TRUE(bufferDeviation(p, a, b).bitIdentical);

    // One lane nudged by one representable step: 1 ulp, tiny abs.
    std::vector<double> &lane = b.data(0);
    ASSERT_FALSE(lane.empty());
    double orig = lane[0];
    lane[0] = std::nextafter(orig, 1e300);
    BufferDeviation dev = bufferDeviation(p, a, b);
    EXPECT_FALSE(dev.bitIdentical);
    EXPECT_EQ(dev.maxUlp, 1u);
    EXPECT_GT(dev.maxAbs, 0.0);

    // NaN vs non-NaN pins the deviation to the contract maximum.
    lane[0] = std::numeric_limits<double>::quiet_NaN();
    dev = bufferDeviation(p, a, b);
    EXPECT_FALSE(dev.bitIdentical);
    EXPECT_EQ(dev.maxUlp, std::numeric_limits<uint64_t>::max());
    EXPECT_TRUE(std::isinf(dev.maxAbs));
}

// Fast, TSAN-scaled differential: the instrumented parallel bytecode
// backends (static and graph at 2 and 4 threads, plus simd under a
// 4-thread team) against the scalar run, bit-identical, on two
// workloads with very different tile graphs. The registry-wide
// BackendSweep carries the same contract but its native pipeline
// compiles make it minutes-long under TSAN; this suite is the
// interleaving coverage the race gate actually runs (check.sh picks
// it up via the Backend* filter, which the AllWorkloads/BackendSweep
// instantiation prefix deliberately does not match).
TEST(BackendTsanDifferential, ParallelBackendsStayBitIdentical)
{
    for (const char *name : {"harris", "conv2d"}) {
        ir::Program p;
        auto state = compileSmall(name, driver::Strategy::Ours, p);

        Buffers ref(p);
        initInputs(p, ref);
        execute(p, state.ast, ref, {});

        for (const char *bname :
             {"bytecode-par2", "bytecode-par4", "bytecode-graph2",
              "bytecode-graph4", "bytecode-par4-simd"}) {
            const BackendSpec *b = findBackend(bname);
            ASSERT_NE(b, nullptr) << bname;
            SCOPED_TRACE(std::string(name) + " / " + bname);
            Buffers buf(p);
            initInputs(p, buf);
            ExecOptions eo = backendOptions(*b);
            eo.tileBands = &state.tileBands;
            ExecResult r = execute(p, state.ast, buf, eo);
            EXPECT_EQ(r.tier, Tier::Bytecode) << r.fallbackReason;
            EXPECT_TRUE(r.parFallbackReason.empty())
                << r.parFallbackReason;
            for (size_t t = 0; t < p.tensors().size(); ++t)
                EXPECT_EQ(ref.data(t), buf.data(t))
                    << "tensor " << p.tensor(t).name;
        }
    }
}

TEST(ParallelExec, WavefrontGraphDrainsTheTileDag)
{
    // seidel's uniform (1,0)/(0,1)/(1,1) dependences make every
    // rectangular tiling a wavefront. The graph strategy must drain
    // the whole DAG -- with broken in-degree accounting this test
    // deadlocks (workers starve with done < n), which the ctest
    // timeout turns into a failure.
    ir::Program p;
    auto state =
        compileSmall("seidel", driver::Strategy::MinFuse, p);
    ASSERT_EQ(state.tileBands.size(), 1u);
    ASSERT_EQ(state.tileBands[0].cls,
              deps::TileBandClass::Wavefront);
    ASSERT_FALSE(state.tileBands[0].deltas.empty());

    Buffers ref(p);
    initInputs(p, ref);
    execute(p, state.ast, ref, {});

    Buffers buf(p);
    initInputs(p, buf);
    ExecOptions eo;
    eo.threads = 8;
    eo.par = ParStrategy::Graph;
    eo.tileBands = &state.tileBands;
    ExecResult r = execute(p, state.ast, buf, eo);
    EXPECT_TRUE(r.parFallbackReason.empty())
        << r.parFallbackReason;
    EXPECT_EQ(r.par.regionsParallel, 1u);
    EXPECT_GT(r.par.tilesExecuted, 1u);
    EXPECT_GT(r.par.criticalPath, 1u);
    EXPECT_LT(r.par.criticalPath, r.par.tilesExecuted);
    EXPECT_EQ(ref.data(p.tensorId("A")), buf.data(p.tensorId("A")));
}

TEST(ParallelExec, StaticKeepsWavefrontBandsSequential)
{
    ir::Program p;
    auto state =
        compileSmall("seidel", driver::Strategy::MinFuse, p);

    Buffers ref(p);
    initInputs(p, ref);
    execute(p, state.ast, ref, {});

    Buffers buf(p);
    initInputs(p, buf);
    ExecOptions eo;
    eo.threads = 4;
    eo.par = ParStrategy::Static;
    eo.tileBands = &state.tileBands;
    ExecResult r = execute(p, state.ast, buf, eo);
    EXPECT_EQ(r.par.regionsParallel, 0u);
    EXPECT_GT(r.par.regionsSequential, 0u);
    EXPECT_EQ(ref.data(p.tensorId("A")), buf.data(p.tensorId("A")));
}

TEST(ParallelExec, SpawnFailpointDegradesToSequentialParallel)
{
    failpoints::clearAll();
    failpoints::set("exec.par.spawn", failpoints::Action::Error);
    ir::Program p;
    auto state =
        compileSmall("harris", driver::Strategy::Ours, p);

    Buffers ref(p);
    initInputs(p, ref);
    execute(p, state.ast, ref, {});

    Buffers buf(p);
    initInputs(p, buf);
    ExecOptions eo;
    eo.threads = 4;
    eo.par = ParStrategy::Static;
    eo.tileBands = &state.tileBands;
    ExecResult r = execute(p, state.ast, buf, eo);
    failpoints::clearAll();

    // Planning failed before any tile ran: the whole tape ran
    // sequentially, with the reason recorded.
    EXPECT_FALSE(r.parFallbackReason.empty());
    EXPECT_EQ(r.par.threads, 0u);
    EXPECT_EQ(r.par.tilesExecuted, 0u);
    for (size_t t = 0; t < p.tensors().size(); ++t)
        EXPECT_EQ(ref.data(t), buf.data(t));
}

TEST(ParallelExec, TileGraphFailpointDegradesToSequentialParallel)
{
    failpoints::clearAll();
    failpoints::set("exec.par.tilegraph",
                    failpoints::Action::Budget);
    ir::Program p;
    auto state =
        compileSmall("seidel", driver::Strategy::MinFuse, p);

    Buffers ref(p);
    initInputs(p, ref);
    execute(p, state.ast, ref, {});

    Buffers buf(p);
    initInputs(p, buf);
    ExecOptions eo;
    eo.threads = 4;
    eo.par = ParStrategy::Graph;
    eo.tileBands = &state.tileBands;
    ExecResult r = execute(p, state.ast, buf, eo);
    failpoints::clearAll();

    EXPECT_FALSE(r.parFallbackReason.empty());
    EXPECT_EQ(r.par.tilesExecuted, 0u);
    EXPECT_EQ(ref.data(p.tensorId("A")), buf.data(p.tensorId("A")));
}

TEST(ParallelExec, ZeroThreadsMeansHardwareCountParallel)
{
    ir::Program p;
    auto state =
        compileSmall("harris", driver::Strategy::Ours, p);

    Buffers ref(p);
    initInputs(p, ref);
    execute(p, state.ast, ref, {});

    Buffers buf(p);
    initInputs(p, buf);
    ExecOptions eo;
    eo.threads = 0;
    eo.par = ParStrategy::Static;
    eo.tileBands = &state.tileBands;
    ExecResult r = execute(p, state.ast, buf, eo);
    EXPECT_GT(r.par.threads, 0u);
    for (size_t t = 0; t < p.tensors().size(); ++t)
        EXPECT_EQ(ref.data(t), buf.data(t));
}

TEST(NativeTier, AllStrategiesMatchOnConv2d)
{
    if (!NativeKernel::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain on this machine";
    const driver::WorkloadSpec *spec = driver::findWorkload("conv2d");
    ir::Program p = spec->make({20, 20});
    for (driver::Strategy s : driver::allStrategies()) {
        driver::PipelineOptions popts;
        popts.strategy = s;
        popts.tileSizes = {8, 8};
        auto state = driver::Pipeline(popts).run(p);
        SCOPED_TRACE(driver::strategyName(s));

        Buffers ref(p);
        initInputs(p, ref);
        run(p, state.ast, ref);

        NativeKernel kernel = NativeKernel::compile(p, state.ast);
        ASSERT_TRUE(kernel.ok()) << kernel.reason();
        Buffers nat(p);
        initInputs(p, nat);
        kernel.run(nat);
        for (size_t t = 0; t < p.tensors().size(); ++t)
            EXPECT_EQ(ref.data(t), nat.data(t));
    }
}

TEST(Engine, DispatchesAndReportsTier)
{
    const driver::WorkloadSpec *spec = driver::findWorkload("conv2d");
    ir::Program p = spec->make({16, 16});
    auto state =
        driver::Pipeline(driver::PipelineOptions{}).run(p);

    Buffers a(p), b(p);
    initInputs(p, a);
    initInputs(p, b);

    ExecOptions interp;
    interp.tier = Tier::Interp;
    ExecResult ri = execute(p, state.ast, a, interp);
    EXPECT_EQ(ri.tier, Tier::Interp);

    ExecResult rb = execute(p, state.ast, b); // default: bytecode
    EXPECT_EQ(rb.tier, Tier::Bytecode);
    EXPECT_TRUE(rb.fallbackReason.empty());
    for (size_t t = 0; t < p.tensors().size(); ++t)
        EXPECT_EQ(a.data(t), b.data(t));

    // Native + tracing cannot mix: falls back to bytecode.
    Buffers c(p);
    initInputs(p, c);
    ExecOptions nt;
    nt.tier = Tier::Native;
    nt.trace = [](int, int64_t, bool) {};
    ExecResult rn = execute(p, state.ast, c, nt);
    EXPECT_EQ(rn.tier, Tier::Bytecode);
    EXPECT_FALSE(rn.fallbackReason.empty());
}

TEST(Engine, TierNamesRoundTrip)
{
    for (Tier t : {Tier::Interp, Tier::Bytecode, Tier::Native}) {
        Tier out;
        EXPECT_TRUE(parseTier(tierName(t), &out));
        EXPECT_EQ(out, t);
    }
    Tier out;
    EXPECT_FALSE(parseTier("jit", &out));
}

TEST(BytecodeKernel, HookAdapterSeesScratchpadSpaces)
{
    ir::Program p = workloads::makeConv2D({12, 10, 3, 3});
    auto graph = deps::DependenceGraph::compute(p);
    core::ComposeOptions opts;
    opts.tileSizes = {4, 4};
    auto comp = core::compose(p, graph, opts);
    auto ast = codegen::generateAst(comp.tree);

    BytecodeKernel kernel = BytecodeKernel::compile(p, ast);
    Buffers b(p);
    b.fillPattern(p.tensorId("A"), 7);
    b.fillPattern(p.tensorId("B"), 13);
    int nt = p.tensors().size();
    uint64_t local = 0, global = 0;
    kernel.run(b, [&](int space, int64_t, bool) {
        if (space >= nt)
            ++local;
        else
            ++global;
    });
    EXPECT_GT(local, 0u);
    EXPECT_GT(global, 0u);
}

TEST(Buffers, PatternIsDeterministicAndBoundsChecked)
{
    ir::Program p = workloads::makeConv2D({6, 6, 3, 3});
    Buffers a(p), b(p);
    a.fillPattern(0, 42);
    b.fillPattern(0, 42);
    EXPECT_EQ(a.data(0), b.data(0));
    EXPECT_THROW(a.offsetOf(0, {6, 0}), FatalError);
    EXPECT_THROW(a.offsetOf(0, {0, -1}), FatalError);
    EXPECT_EQ(a.offsetOf(0, {1, 2}), 8);
}

} // namespace
} // namespace exec
} // namespace polyfuse
