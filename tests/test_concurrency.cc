/**
 * @file
 * Re-entrancy tests for the compiler: concurrent compilations with
 * per-run CompileContexts must produce byte-identical ASTs and
 * identical per-context FM counters to the sequential path, the
 * context-less compat path must count exactly the same work, and
 * driver::compileBatch must be invariant in the job count. This
 * binary is also what the check_tsan gate runs under
 * -fsanitize=thread.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "codegen/cprinter.hh"
#include "driver/batch.hh"
#include "driver/pipeline.hh"
#include "exec/bytecode.hh"
#include "perfmodel/autotune.hh"
#include "pres/parser.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "workloads/conv2d.hh"
#include "workloads/pipelines.hh"

namespace polyfuse {
namespace {

driver::PipelineOptions
oursOptions()
{
    driver::PipelineOptions opts;
    opts.strategy = driver::Strategy::Ours;
    opts.tileSizes = {8, 8};
    return opts;
}

/** One compilation against a fresh context: code text + FM work. */
struct CompileOutcome
{
    std::string code;
    pres::fm::Counters fm;
};

CompileOutcome
compileOnce(const ir::Program &p, const driver::PipelineOptions &opts)
{
    driver::CompileContext ctx;
    auto state = driver::Pipeline(opts).run(p, ctx);
    return {codegen::printCode(p, state.ast), ctx.fmCounters()};
}

TEST(Concurrency, ThreadsProduceByteIdenticalAstsAndCounters)
{
    workloads::PipelineConfig cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    const ir::Program p = workloads::makeHarris(cfg);
    const auto opts = oursOptions();

    CompileOutcome reference = compileOnce(p, opts);
    ASSERT_FALSE(reference.code.empty());
    ASSERT_GT(reference.fm.eliminations, 0u);

    const unsigned n = 4;
    std::vector<CompileOutcome> outcomes(n);
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < n; ++i)
        threads.emplace_back([&, i] {
            // Shared read-only program, private context per thread.
            outcomes[i] = compileOnce(p, opts);
        });
    for (auto &t : threads)
        t.join();

    for (unsigned i = 0; i < n; ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(outcomes[i].code, reference.code);
        EXPECT_EQ(outcomes[i].fm.eliminations,
                  reference.fm.eliminations);
        EXPECT_EQ(outcomes[i].fm.constraintsVisited,
                  reference.fm.constraintsVisited);
    }
}

TEST(Concurrency, ContextSumsEqualSharedContextTotals)
{
    const ir::Program p = workloads::makeConv2D({16, 16, 3, 3});
    const auto opts = oursOptions();

    // One shared context accumulating two runs is exactly what the
    // old process-wide counters used to total.
    driver::CompileContext shared;
    (void)driver::Pipeline(opts).run(p, shared);
    (void)driver::Pipeline(opts).run(p, shared);

    // Per-run contexts: each counts only its own work, and their sum
    // matches the accumulated totals.
    CompileOutcome a = compileOnce(p, opts);
    CompileOutcome b = compileOnce(p, opts);
    EXPECT_EQ(a.fm.eliminations, b.fm.eliminations);
    EXPECT_GT(a.fm.eliminations, 0u);
    EXPECT_EQ(a.fm.eliminations + b.fm.eliminations,
              shared.fmCounters().eliminations);
    EXPECT_EQ(a.fm.constraintsVisited + b.fm.constraintsVisited,
              shared.fmCounters().constraintsVisited);
}

TEST(Concurrency, ContextlessPresWorkLandsOnThreadDefault)
{
    // Code calling the pres layer with no installed context (the
    // compat path) still counts -- onto the thread's default
    // context -- and an installed ScopedCtx diverts it.
    pres::BasicSet s = pres::parseBasicSet(
        "[N] -> { S[i, j, k] : 0 <= i < N and 0 <= j <= i and "
        "0 <= k < i + j }");
    const pres::fm::Counters &dflt = pres::fm::activeCtx().counters;
    uint64_t before = dflt.eliminations;
    (void)s.projectOut(1, 2);
    uint64_t contextless = dflt.eliminations - before;
    EXPECT_GT(contextless, 0u);

    pres::fm::PresCtx mine;
    {
        pres::fm::ScopedCtx scope(mine);
        (void)s.projectOut(1, 2);
    }
    EXPECT_EQ(mine.counters.eliminations, contextless);
    // The default context saw none of the scoped run's work.
    EXPECT_EQ(dflt.eliminations, before + contextless);
}

TEST(Concurrency, CompileBatchInvariantInJobCount)
{
    auto makeJobs = [] {
        std::vector<driver::BatchJob> jobs;
        for (auto strategy : {driver::Strategy::MinFuse,
                              driver::Strategy::MaxFuse,
                              driver::Strategy::Ours,
                              driver::Strategy::Naive}) {
            driver::BatchJob job;
            job.name = driver::strategyName(strategy);
            job.options = oursOptions();
            job.options.strategy = strategy;
            job.make = [] {
                return workloads::makeConv2D({16, 16, 3, 3});
            };
            jobs.push_back(std::move(job));
        }
        return jobs;
    };

    auto seq = driver::compileBatch(makeJobs(), 1);
    auto par = driver::compileBatch(makeJobs(), 4);
    ASSERT_EQ(seq.jobs.size(), par.jobs.size());
    EXPECT_EQ(seq.failed(), 0u);
    EXPECT_EQ(par.failed(), 0u);
    for (size_t i = 0; i < seq.jobs.size(); ++i) {
        SCOPED_TRACE(seq.jobs[i].name);
        EXPECT_EQ(par.jobs[i].name, seq.jobs[i].name);
        // Byte-identical code and FM work per job.
        EXPECT_EQ(
            codegen::printCode(*par.jobs[i].artifact.image->program,
                               par.jobs[i].artifact.image->ast),
            codegen::printCode(*seq.jobs[i].artifact.image->program,
                               seq.jobs[i].artifact.image->ast));
        EXPECT_EQ(par.jobs[i].artifact.fingerprint,
                  seq.jobs[i].artifact.fingerprint);
        EXPECT_EQ(par.jobs[i].fm.eliminations,
                  seq.jobs[i].fm.eliminations);
        EXPECT_EQ(par.jobs[i].fm.constraintsVisited,
                  seq.jobs[i].fm.constraintsVisited);
        // Per-pass stats (counters incl. fm_elims) identical too;
        // compare through the machine-stable JSON with timings
        // stripped.
        auto stripMs = [](std::string s) {
            for (const char *key : {"\"ms\": ", "\"totalMs\": "}) {
                const size_t keyLen = std::string(key).size();
                for (size_t at = s.find(key);
                     at != std::string::npos;
                     at = s.find(key, at + 1)) {
                    size_t from = at + keyLen;
                    size_t to = from;
                    while (to < s.size() && s[to] != ',' &&
                           s[to] != '}')
                        ++to;
                    s.replace(from, to - from, "0");
                }
            }
            return s;
        };
        EXPECT_EQ(stripMs(par.jobs[i].artifact.stats.json()),
                  stripMs(seq.jobs[i].artifact.stats.json()));
    }
    // Batch failure capture: a throwing factory fails only its job.
    auto jobs = makeJobs();
    jobs[1].make = []() -> ir::Program {
        throw FatalError("boom");
    };
    auto mixed = driver::compileBatch(std::move(jobs), 2);
    EXPECT_EQ(mixed.failed(), 1u);
    EXPECT_FALSE(mixed.jobs[1].ok);
    EXPECT_NE(mixed.jobs[1].error.find("boom"), std::string::npos);
    EXPECT_TRUE(mixed.jobs[0].ok);
    EXPECT_NE(mixed.summary().find("FAILED"), std::string::npos);
}

TEST(Concurrency, AutotuneParallelMatchesSequential)
{
    ir::Program p = workloads::makeConv2D({32, 32, 3, 3});
    auto g = deps::DependenceGraph::compute(p);
    auto init = [&](exec::Buffers &b) {
        b.fillPattern(p.tensorId("A"), 7);
        b.fillPattern(p.tensorId("B"), 13);
    };
    perfmodel::AutotuneOptions opts;
    opts.candidates = {8, 16, 32};
    opts.dims = 2;
    opts.jobs = 1;
    auto seq = perfmodel::autotuneTileSizes(p, g, init, opts);
    opts.jobs = 4;
    auto par = perfmodel::autotuneTileSizes(p, g, init, opts);
    EXPECT_EQ(par.tileSizes, seq.tileSizes);
    EXPECT_EQ(par.evaluated, seq.evaluated);
    EXPECT_DOUBLE_EQ(par.modeledMs, seq.modeledMs);
}

TEST(Concurrency, SharedBytecodeKernelRunsFromManyThreads)
{
    // One compiled Image, many concurrent runs: the kernel is
    // immutable after compile() (each run() builds its own Machine
    // state), so N threads sharing it must produce the same buffers
    // as a sequential run. This is the exec half of the check_tsan
    // gate.
    const ir::Program p = workloads::makeConv2D({24, 24, 3, 3});
    auto state = driver::Pipeline(oursOptions()).run(p);
    const exec::BytecodeKernel kernel =
        exec::BytecodeKernel::compile(p, state.ast);

    auto fill = [&p](exec::Buffers &buf) {
        for (size_t t = 0; t < p.tensors().size(); ++t)
            if (p.tensor(t).kind != ir::TensorKind::Temp)
                buf.fillPattern(int(t), 1000 + t);
    };

    exec::Buffers ref(p);
    fill(ref);
    kernel.run(ref);

    const int n_threads = 8;
    std::vector<exec::Buffers> bufs;
    bufs.reserve(n_threads);
    for (int t = 0; t < n_threads; ++t) {
        bufs.emplace_back(p);
        fill(bufs.back());
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t)
        threads.emplace_back(
            [&kernel, &bufs, t] { kernel.run(bufs[t]); });
    for (auto &th : threads)
        th.join();

    for (int t = 0; t < n_threads; ++t)
        for (size_t i = 0; i < p.tensors().size(); ++i)
            EXPECT_EQ(bufs[t].data(int(i)), ref.data(int(i)))
                << "thread " << t << " tensor " << i;
}

TEST(Concurrency, ThreadPoolRunsEveryJobExactlyOnce)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    const int n = 200;
    std::vector<int> hits(n, 0);
    for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < n; ++i)
            pool.submit([&hits, i] { ++hits[i]; });
        pool.wait(); // reusable across waves
    }
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 2) << i;
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

} // namespace
} // namespace polyfuse
