/**
 * @file
 * Tests for the program IR and builder, using the paper's Fig. 1(a)
 * convolution as the primary fixture.
 */

#include <gtest/gtest.h>

#include "ir/program.hh"
#include "support/logging.hh"
#include "workloads/conv2d.hh"

namespace polyfuse {
namespace ir {
namespace {

TEST(Program, Conv2DStructure)
{
    Program p = workloads::makeConv2D({6, 6, 3, 3});
    EXPECT_EQ(p.statements().size(), 4u);
    EXPECT_EQ(p.numGroups(), 3u);
    EXPECT_EQ(p.groupStatements(1),
              (std::vector<int>{p.statementId("S1"),
                                p.statementId("S2")}));
    EXPECT_EQ(p.tensors().size(), 3u);
}

TEST(Program, LiveOutClassification)
{
    Program p = workloads::makeConv2D();
    EXPECT_FALSE(p.tensorLiveOut(p.tensorId("A")));
    EXPECT_FALSE(p.tensorLiveOut(p.tensorId("B")));
    EXPECT_TRUE(p.tensorLiveOut(p.tensorId("C")));
    EXPECT_FALSE(p.groupLiveOut(0)); // S0 writes A (temp)
    EXPECT_TRUE(p.groupLiveOut(1));  // S1/S2 write C
    EXPECT_TRUE(p.groupLiveOut(2));  // S3 writes C
}

TEST(Program, TensorExtentsEvaluate)
{
    Program p = workloads::makeConv2D({6, 6, 3, 3});
    int A = p.tensorId("A");
    int C = p.tensorId("C");
    EXPECT_EQ(p.tensorExtent(A, 0), 6);
    EXPECT_EQ(p.tensorExtent(C, 0), 4); // H - KH + 1
    EXPECT_EQ(p.tensorSize(A), 36);
    EXPECT_EQ(p.tensorSize(C), 16);
}

TEST(Program, DomainsAndAccessUnions)
{
    Program p = workloads::makeConv2D({6, 6, 3, 3});
    pres::Set dom = p.domains();
    EXPECT_EQ(dom.pieces().size(), 4u);
    auto s2 = dom.enumerateTuple("S2", p.paramValues());
    EXPECT_EQ(s2.size(), 16u * 9u);

    pres::Map writes = p.writes();
    // S0 writes A; S1, S2, S3 write C.
    EXPECT_EQ(writes.extractRangeTuple("A").pieces().size(), 1u);
    EXPECT_EQ(writes.extractRangeTuple("C").pieces().size(), 3u);

    pres::Map reads = p.reads();
    EXPECT_EQ(reads.extractRangeTuple("B").pieces().size(), 1u);
}

TEST(Program, StatementAccessorsAndPaths)
{
    Program p = workloads::makeConv2D();
    const Statement &s2 = p.statement(p.statementId("S2"));
    EXPECT_EQ(s2.numDims(), 4u);
    EXPECT_EQ(s2.dimNames(),
              (std::vector<std::string>{"h", "w", "kh", "kw"}));
    EXPECT_EQ(s2.readIndices().size(), 3u);
    EXPECT_EQ(s2.writeAccess().tensor, p.tensorId("C"));
    ASSERT_EQ(s2.path().size(), 5u);
    EXPECT_EQ(s2.path()[2].kind, PathElem::Kind::Seq);
    EXPECT_EQ(s2.path()[2].value, 1u);

    const Statement &s0 = p.statement(p.statementId("S0"));
    ASSERT_EQ(s0.path().size(), 2u); // default: all dims as loops
    EXPECT_EQ(s0.path()[0].kind, PathElem::Kind::Loop);
}

TEST(Program, AccessIndexExprsExtracted)
{
    Program p = workloads::makeConv2D();
    const Statement &s2 = p.statement(p.statementId("S2"));
    const Access &a = s2.accesses()[s2.readIndices()[1]]; // A read
    ASSERT_TRUE(a.hasExprs);
    ASSERT_EQ(a.indexExprs.size(), 2u);
    // Row over [h, w, kh, kw, const]: h + kh.
    EXPECT_EQ(a.indexExprs[0],
              (std::vector<int64_t>{1, 0, 1, 0, 0}));
}

TEST(Builder, RejectsMismatchedTuples)
{
    ProgramBuilder b("bad");
    b.param("N", 8);
    b.tensor("A", {"N"}, TensorKind::Temp);
    EXPECT_THROW(
        b.statement("S0").domain("[N] -> { WRONG[i] : 0 <= i < N }"),
        FatalError);
}

TEST(Builder, RejectsUnknownTensorInAccess)
{
    ProgramBuilder b("bad");
    b.param("N", 8);
    auto s = b.statement("S0");
    s.domain("[N] -> { S0[i] : 0 <= i < N }");
    EXPECT_THROW(s.reads("NOPE", "{ S0[i] -> NOPE[i] }"), FatalError);
}

TEST(Builder, RejectsAccessRankMismatch)
{
    ProgramBuilder b("bad");
    b.param("N", 8);
    b.tensor("A", {"N", "N"}, TensorKind::Temp);
    auto s = b.statement("S0");
    s.domain("[N] -> { S0[i] : 0 <= i < N }");
    EXPECT_THROW(s.writes("A", "{ S0[i] -> A[i] }"), FatalError);
}

TEST(Builder, RejectsSecondWrite)
{
    ProgramBuilder b("bad");
    b.param("N", 8);
    b.tensor("A", {"N"}, TensorKind::Temp);
    auto s = b.statement("S0");
    s.domain("[N] -> { S0[i] : 0 <= i < N }");
    s.writes("A", "{ S0[i] -> A[i] }");
    EXPECT_THROW(s.writes("A", "{ S0[i] -> A[i] }"), FatalError);
}

TEST(Builder, RejectsDuplicateNames)
{
    ProgramBuilder b("bad");
    b.param("N", 8);
    EXPECT_THROW(b.param("N", 9), FatalError);
    b.tensor("A", {"N"}, TensorKind::Temp);
    EXPECT_THROW(b.tensor("A", {"N"}, TensorKind::Temp), FatalError);
    b.statement("S0").domain("[N] -> { S0[i] : 0 <= i < N }");
    EXPECT_THROW(b.statement("S0"), FatalError);
}

TEST(Builder, RejectsGapInGroups)
{
    ProgramBuilder b("bad");
    b.param("N", 8);
    b.tensor("A", {"N"}, TensorKind::Output);
    b.statement("S0")
        .domain("[N] -> { S0[i] : 0 <= i < N }")
        .writes("A", "{ S0[i] -> A[i] }")
        .body(lit(1.0))
        .group(2); // group 0/1 missing
    EXPECT_THROW(b.build(), FatalError);
}

TEST(Expr, FactoryAndOperators)
{
    ExprPtr e = loadAcc(0) * lit(2.0) + iterVar(1) - paramRef("N");
    ASSERT_EQ(e->kind, Expr::Kind::Binary);
    EXPECT_EQ(e->bop, BinOp::Sub);
    ASSERT_EQ(e->args.size(), 2u);
    EXPECT_EQ(e->args[1]->kind, Expr::Kind::Param);
    ExprPtr u = un(UnOp::Relu, lit(-3.0));
    EXPECT_EQ(u->uop, UnOp::Relu);
    ExprPtr ix = loadIdx(2, {iterVar(0), lit(3.0)});
    EXPECT_EQ(ix->tensor, 2);
    EXPECT_EQ(ix->args.size(), 2u);
}

} // namespace
} // namespace ir
} // namespace polyfuse
