/**
 * @file
 * Tests for the hardened compile service (ISSUE 8): wire protocol
 * round-trips and rejections, framing over raw socketpairs, and a
 * live in-process daemon exercised end to end -- bit-identity
 * against direct driver::compileKernel runs, concurrent clients,
 * deadline enforcement, admission-control shedding, graceful drain,
 * and a chaos sweep that fires every failpoint site through the
 * server and demands a typed error or a graceful degrade for the
 * poisoned request while every subsequent request stays correct.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <dirent.h>
#include <memory>
#include <mutex>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "driver/artifact.hh"
#include "driver/compile_context.hh"
#include "driver/pipeline.hh"
#include "driver/registry.hh"
#include "exec/engine.hh"
#include "exec/kernel_cache.hh"
#include "exec/native.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "support/failpoint.hh"

namespace polyfuse {
namespace service {
namespace {

// ---------------------------------------------------------------
// Protocol: encode/decode round-trips and strict rejection.
// ---------------------------------------------------------------

TEST(ServiceProtocol, RequestRoundTripsThroughJson)
{
    Request req;
    req.op = "compile";
    req.id = 42;
    req.workload = "conv2d";
    req.rows = 64;
    req.cols = 48;
    req.strategy = "hybridfuse";
    req.tiles = {8, 16};
    req.tilesGiven = true;
    req.innerTiles = {4, 4};
    req.tier = "native";
    req.run = false;
    req.deadlineMs = 250.5;
    req.threads = 4;
    req.par = "graph";

    Request got;
    std::string err;
    ASSERT_TRUE(decodeRequest(encodeRequest(req), &got, &err)) << err;
    EXPECT_EQ(got.op, req.op);
    EXPECT_EQ(got.id, req.id);
    EXPECT_EQ(got.workload, req.workload);
    EXPECT_EQ(got.rows, req.rows);
    EXPECT_EQ(got.cols, req.cols);
    EXPECT_EQ(got.strategy, req.strategy);
    EXPECT_EQ(got.tiles, req.tiles);
    EXPECT_TRUE(got.tilesGiven);
    EXPECT_EQ(got.innerTiles, req.innerTiles);
    EXPECT_EQ(got.tier, req.tier);
    EXPECT_FALSE(got.run);
    EXPECT_DOUBLE_EQ(got.deadlineMs, req.deadlineMs);
    EXPECT_EQ(got.threads, req.threads);
    EXPECT_EQ(got.par, req.par);

    // A defaulted request survives too (tiles stay "not given").
    Request bare;
    bare.workload = "conv2d";
    ASSERT_TRUE(decodeRequest(encodeRequest(bare), &got, &err))
        << err;
    EXPECT_FALSE(got.tilesGiven);
    EXPECT_TRUE(got.run);
    EXPECT_EQ(got.tier, "bytecode");
}

TEST(ServiceProtocol, ResponseRoundTripsOkErrorAndStats)
{
    Response ok;
    ok.id = 7;
    ok.ok = true;
    ok.fingerprint = "00ff00ff00ff00ff";
    ok.requestedTier = "native";
    ok.tier = "bytecode";
    ok.strategy = "minfuse";
    ok.requestedStrategy = "ours";
    ok.fallbackTrail = {"ours", "hybridfuse"};
    ok.tierFallbackReason = "cc exploded";
    ok.fromCache = true;
    ok.downgraded = true;
    ok.compileMs = 1.5;
    ok.runMs = 0.25;
    ok.queueMs = 0.125;
    ok.retries = 2;
    ok.bufferHash = "deadbeefdeadbeef";

    Response got;
    std::string err;
    ASSERT_TRUE(decodeResponse(encodeResponse(ok), &got, &err))
        << err;
    EXPECT_TRUE(got.ok);
    EXPECT_EQ(got.id, 7u);
    EXPECT_EQ(got.fingerprint, ok.fingerprint);
    EXPECT_EQ(got.tier, "bytecode");
    EXPECT_EQ(got.requestedTier, "native");
    EXPECT_EQ(got.strategy, "minfuse");
    EXPECT_EQ(got.requestedStrategy, "ours");
    EXPECT_EQ(got.fallbackTrail, ok.fallbackTrail);
    EXPECT_EQ(got.tierFallbackReason, "cc exploded");
    EXPECT_TRUE(got.fromCache);
    EXPECT_TRUE(got.downgraded);
    EXPECT_DOUBLE_EQ(got.compileMs, 1.5);
    EXPECT_DOUBLE_EQ(got.runMs, 0.25);
    EXPECT_DOUBLE_EQ(got.queueMs, 0.125);
    EXPECT_EQ(got.retries, 2u);
    EXPECT_EQ(got.bufferHash, "deadbeefdeadbeef");

    Response bad;
    bad.id = 9;
    bad.ok = false;
    bad.kind = ErrorKind::Overloaded;
    bad.message = "come back later";
    ASSERT_TRUE(decodeResponse(encodeResponse(bad), &got, &err))
        << err;
    EXPECT_FALSE(got.ok);
    EXPECT_EQ(got.kind, ErrorKind::Overloaded);
    EXPECT_EQ(got.message, "come back later");

    Response stats;
    stats.id = 11;
    stats.ok = true;
    stats.server.present = true;
    stats.server.accepted = 10;
    stats.server.completed = 9;
    stats.server.shed = 3;
    stats.server.retries = 2;
    stats.server.errors = 1;
    stats.server.timeouts = 1;
    stats.server.cacheHits = 5;
    ASSERT_TRUE(decodeResponse(encodeResponse(stats), &got, &err))
        << err;
    EXPECT_TRUE(got.server.present);
    EXPECT_EQ(got.server.accepted, 10u);
    EXPECT_EQ(got.server.completed, 9u);
    EXPECT_EQ(got.server.shed, 3u);
    EXPECT_EQ(got.server.retries, 2u);
    EXPECT_EQ(got.server.errors, 1u);
    EXPECT_EQ(got.server.timeouts, 1u);
    EXPECT_EQ(got.server.cacheHits, 5u);
}

TEST(ServiceProtocol, RejectsMalformedAndUnknownShapes)
{
    Request req;
    std::string err;
    // Malformed JSON.
    EXPECT_FALSE(decodeRequest("{\"op\": \"ping\"", &req, &err));
    EXPECT_FALSE(decodeRequest("not json at all", &req, &err));
    // Unknown op.
    EXPECT_FALSE(
        decodeRequest("{\"op\": \"explode\", \"id\": 1}", &req,
                      &err));
    // Unknown key: refusing beats guessing.
    EXPECT_FALSE(decodeRequest(
        "{\"op\": \"ping\", \"id\": 1, \"bogus\": true}", &req,
        &err));
    EXPECT_NE(err.find("bogus"), std::string::npos) << err;
    // Out-of-range values.
    EXPECT_FALSE(decodeRequest(
        "{\"op\": \"compile\", \"id\": 1, \"workload\": \"c\", "
        "\"rows\": -4}",
        &req, &err));
    EXPECT_FALSE(decodeRequest(
        "{\"op\": \"compile\", \"id\": 1, \"workload\": \"c\", "
        "\"tiles\": [0]}",
        &req, &err));
    EXPECT_FALSE(decodeRequest(
        "{\"op\": \"compile\", \"id\": 1, \"workload\": \"c\", "
        "\"tiles\": [1099511627776]}",
        &req, &err));

    Response resp;
    EXPECT_FALSE(decodeResponse("{\"id\": 1}", &resp, &err));
    EXPECT_FALSE(decodeResponse(
        "{\"id\": 1, \"ok\": false, \"error\": {\"kind\": "
        "\"weird\", \"message\": \"m\"}}",
        &resp, &err));
}

TEST(ServiceProtocol, ErrorKindNamesRoundTrip)
{
    const ErrorKind kinds[] = {
        ErrorKind::BadRequest, ErrorKind::Overloaded,
        ErrorKind::Timeout,    ErrorKind::Cancelled,
        ErrorKind::Fatal,      ErrorKind::Panic,
        ErrorKind::Internal,   ErrorKind::Oversized,
        ErrorKind::Shutdown,
    };
    for (ErrorKind kind : kinds) {
        ErrorKind parsed;
        ASSERT_TRUE(parseErrorKind(errorKindName(kind), &parsed))
            << errorKindName(kind);
        EXPECT_EQ(parsed, kind);
    }
    ErrorKind parsed;
    EXPECT_FALSE(parseErrorKind("weird", &parsed));
    EXPECT_STREQ(errorKindName(ErrorKind::None), "");
}

// ---------------------------------------------------------------
// Framing over a raw socketpair.
// ---------------------------------------------------------------

struct SocketPair
{
    int a = -1;
    int b = -1;
    SocketPair()
    {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0) {
            a = fds[0];
            b = fds[1];
        }
    }
    ~SocketPair()
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }
    void
    closeA()
    {
        ::close(a);
        a = -1;
    }
};

TEST(ServiceFraming, RoundTripsAndReportsCleanEof)
{
    SocketPair sp;
    ASSERT_GE(sp.a, 0);
    std::string err;
    ASSERT_TRUE(writeFrame(sp.a, "hello frame", &err)) << err;
    ASSERT_TRUE(writeFrame(sp.a, "", &err)) << err; // empty payload

    std::string payload;
    EXPECT_EQ(readFrame(sp.b, &payload, &err), FrameStatus::Ok);
    EXPECT_EQ(payload, "hello frame");
    EXPECT_EQ(readFrame(sp.b, &payload, &err), FrameStatus::Ok);
    EXPECT_EQ(payload, "");

    sp.closeA();
    EXPECT_EQ(readFrame(sp.b, &payload, &err), FrameStatus::Eof);
}

TEST(ServiceFraming, TruncatedFrameIsAnError)
{
    SocketPair sp;
    ASSERT_GE(sp.a, 0);
    // Announce 100 bytes, deliver 10, hang up.
    uint32_t len = 100;
    unsigned char hdr[4] = {
        (unsigned char)(len & 0xff),
        (unsigned char)((len >> 8) & 0xff),
        (unsigned char)((len >> 16) & 0xff),
        (unsigned char)((len >> 24) & 0xff),
    };
    ASSERT_EQ(::send(sp.a, hdr, 4, 0), 4);
    ASSERT_EQ(::send(sp.a, "0123456789", 10, 0), 10);
    sp.closeA();

    std::string payload, err;
    EXPECT_EQ(readFrame(sp.b, &payload, &err), FrameStatus::Error);
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
}

TEST(ServiceFraming, EofAfterHeaderReportsTruncatedFrame)
{
    SocketPair sp;
    ASSERT_GE(sp.a, 0);
    // Announce 12 bytes, deliver none, hang up: still a truncated
    // frame, and the diagnostic must say so (not come back empty).
    uint32_t len = 12;
    unsigned char hdr[4] = {
        (unsigned char)(len & 0xff),
        (unsigned char)((len >> 8) & 0xff),
        (unsigned char)((len >> 16) & 0xff),
        (unsigned char)((len >> 24) & 0xff),
    };
    ASSERT_EQ(::send(sp.a, hdr, 4, 0), 4);
    sp.closeA();

    std::string payload, err;
    EXPECT_EQ(readFrame(sp.b, &payload, &err), FrameStatus::Error);
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
}

TEST(ServiceFraming, OversizedAnnouncementIsRejectedUnread)
{
    SocketPair sp;
    ASSERT_GE(sp.a, 0);
    uint32_t len = kMaxFrameBytes + 1;
    unsigned char hdr[4] = {
        (unsigned char)(len & 0xff),
        (unsigned char)((len >> 8) & 0xff),
        (unsigned char)((len >> 16) & 0xff),
        (unsigned char)((len >> 24) & 0xff),
    };
    ASSERT_EQ(::send(sp.a, hdr, 4, 0), 4);
    std::string payload, err;
    EXPECT_EQ(readFrame(sp.b, &payload, &err),
              FrameStatus::Oversized);

    // A caller-supplied cap below the default is honored too.
    SocketPair sp2;
    ASSERT_GE(sp2.a, 0);
    ASSERT_TRUE(writeFrame(sp2.a, "0123456789", &err)) << err;
    EXPECT_EQ(readFrame(sp2.b, &payload, &err, /*max_bytes=*/4),
              FrameStatus::Oversized);
}

// ---------------------------------------------------------------
// Live daemon fixture.
// ---------------------------------------------------------------

class ServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        failpoints::clearAll();
        exec::KernelCache::process().clear();
    }
    void
    TearDown() override
    {
        failpoints::clearAll();
    }

    /** Short unique socket path (sun_path caps at ~107 bytes). */
    std::string
    sockPath() const
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        std::string name = info ? info->name() : "svc";
        if (name.size() > 24)
            name.resize(24);
        return "/tmp/pf_" + std::to_string(::getpid()) + "_" + name +
               ".sock";
    }

    std::unique_ptr<Server>
    startServer(ServerOptions opts = {})
    {
        // Tests never really sleep between retries.
        if (!opts.nativeRetry.sleep)
            opts.nativeRetry.sleep = [](double) {};
        auto srv =
            std::make_unique<Server>(sockPath(), std::move(opts));
        std::string err;
        EXPECT_TRUE(srv->start(&err)) << err;
        return srv;
    }

    Client
    connectTo(const Server &srv)
    {
        Client c;
        std::string err;
        EXPECT_TRUE(c.connect(srv.socketPath(), &err)) << err;
        return c;
    }

    static Request
    compileReq(const std::string &workload, uint64_t id,
               std::vector<int64_t> tiles = {})
    {
        Request req;
        req.op = "compile";
        req.id = id;
        req.workload = workload;
        req.rows = 32;
        req.cols = 32;
        if (!tiles.empty()) {
            req.tiles = std::move(tiles);
            req.tilesGiven = true;
        }
        return req;
    }

    /** The same compile+run the server performs, straight through
     *  the driver with no cache: the bit-identity reference. */
    static std::string
    directHash(const Request &req)
    {
        const driver::WorkloadSpec *spec =
            driver::findWorkload(req.workload);
        if (!spec)
            return "<unknown workload>";
        driver::PipelineOptions popts;
        if (!driver::parseStrategy(req.strategy, popts.strategy))
            return "<unknown strategy>";
        exec::Tier tier;
        if (!exec::parseTier(req.tier, &tier))
            return "<unknown tier>";
        exec::ParStrategy par;
        if (!exec::parseParStrategy(req.par, &par))
            return "<unknown par>";
        driver::WorkloadParams params = spec->defaults;
        if (req.rows > 0)
            params.rows = req.rows;
        if (req.cols > 0)
            params.cols = req.cols;
        popts.tileSizes =
            req.tilesGiven ? req.tiles : spec->defaultTiles;
        popts.innerTileSizes = req.innerTiles;
        auto program = std::make_shared<const ir::Program>(
            spec->make(params));
        driver::Pipeline pipeline(popts);
        driver::CompileContext ctx;
        driver::KernelArtifact artifact = driver::compileKernel(
            pipeline, program, ctx, driver::ArtifactOptions{});
        exec::Buffers buffers(*program);
        fillServiceInputs(*program, buffers);
        exec::ExecOptions eopts;
        eopts.tier = tier;
        eopts.threads = req.threads ? req.threads : 1;
        eopts.par = par;
        driver::executeKernel(artifact, buffers, eopts);
        return hashBuffers(buffers);
    }
};

TEST_F(ServiceTest, PingStatsAndShutdownOps)
{
    auto srv = startServer();
    Client c = connectTo(*srv);

    Request ping;
    ping.op = "ping";
    ping.id = 1;
    Response resp;
    std::string err;
    ASSERT_TRUE(c.call(ping, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(resp.id, 1u);

    Request stats;
    stats.op = "stats";
    stats.id = 2;
    ASSERT_TRUE(c.call(stats, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    ASSERT_TRUE(resp.server.present);
    EXPECT_EQ(resp.server.accepted, 0u);

    Request shutdown;
    shutdown.op = "shutdown";
    shutdown.id = 3;
    ASSERT_TRUE(c.call(shutdown, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    EXPECT_TRUE(srv->waitForShutdownRequest(/*ms=*/5000));
    srv->stop();
}

TEST_F(ServiceTest, CompileMatchesDirectExecutionBitForBit)
{
    auto srv = startServer();
    Client c = connectTo(*srv);

    Request req = compileReq("conv2d", 1, {8, 8});
    Response resp;
    std::string err;
    ASSERT_TRUE(c.call(req, &resp, &err)) << err;
    ASSERT_TRUE(resp.ok) << resp.message;
    EXPECT_FALSE(resp.fromCache);
    EXPECT_EQ(resp.tier, "bytecode");
    EXPECT_FALSE(resp.fingerprint.empty());
    ASSERT_FALSE(resp.bufferHash.empty());
    EXPECT_EQ(resp.bufferHash, directHash(req));

    // Warm repeat: served from the kernel cache, same bits.
    Request again = req;
    again.id = 2;
    Response warm;
    ASSERT_TRUE(c.call(again, &warm, &err)) << err;
    ASSERT_TRUE(warm.ok) << warm.message;
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(warm.fingerprint, resp.fingerprint);
    EXPECT_EQ(warm.bufferHash, resp.bufferHash);

    // `completed` ticks just *after* the response frame is written,
    // so settle before reading the counters over the wire.
    ServerStats settled = srv->stats();
    for (int spin = 0;
         spin < 1000 && settled.completed < settled.accepted; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        settled = srv->stats();
    }

    Response sresp;
    Request stats;
    stats.op = "stats";
    stats.id = 3;
    ASSERT_TRUE(c.call(stats, &sresp, &err)) << err;
    EXPECT_EQ(sresp.server.accepted, 2u);
    EXPECT_EQ(sresp.server.completed, 2u);
    EXPECT_EQ(sresp.server.cacheHits, 1u);
    EXPECT_EQ(sresp.server.errors, 0u);
}

TEST_F(ServiceTest, MalformedFrameGetsBadRequestAndConnSurvives)
{
    auto srv = startServer();
    Client c = connectTo(*srv);

    // Straight garbage in a well-formed frame: typed badrequest.
    std::string err;
    ASSERT_TRUE(writeFrame(c.fd(), "this is not json", &err)) << err;
    std::string payload;
    ASSERT_EQ(readFrame(c.fd(), &payload, &err), FrameStatus::Ok)
        << err;
    Response resp;
    ASSERT_TRUE(decodeResponse(payload, &resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, ErrorKind::BadRequest);

    // The same connection keeps working afterwards.
    Request ping;
    ping.op = "ping";
    ping.id = 5;
    ASSERT_TRUE(c.call(ping, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
}

TEST_F(ServiceTest, OversizedFrameIsAnsweredThenConnectionCloses)
{
    auto srv = startServer();
    Client c = connectTo(*srv);

    uint32_t len = kMaxFrameBytes + 1;
    unsigned char hdr[4] = {
        (unsigned char)(len & 0xff),
        (unsigned char)((len >> 8) & 0xff),
        (unsigned char)((len >> 16) & 0xff),
        (unsigned char)((len >> 24) & 0xff),
    };
    ASSERT_EQ(::send(c.fd(), hdr, 4, MSG_NOSIGNAL), 4);

    std::string payload, err;
    ASSERT_EQ(readFrame(c.fd(), &payload, &err), FrameStatus::Ok)
        << err;
    Response resp;
    ASSERT_TRUE(decodeResponse(payload, &resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, ErrorKind::Oversized);
    // The stream position is unrecoverable: the server hangs up.
    EXPECT_EQ(readFrame(c.fd(), &payload, &err), FrameStatus::Eof);

    // The daemon itself is fine: a fresh connection works.
    Client c2 = connectTo(*srv);
    Request ping;
    ping.op = "ping";
    ping.id = 1;
    ASSERT_TRUE(c2.call(ping, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
}

TEST_F(ServiceTest, UnknownWorkloadStrategyTierAreBadRequests)
{
    auto srv = startServer();
    Client c = connectTo(*srv);
    Response resp;
    std::string err;

    Request req = compileReq("blur9000", 1);
    ASSERT_TRUE(c.call(req, &resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, ErrorKind::BadRequest);
    EXPECT_NE(resp.message.find("blur9000"), std::string::npos);

    req = compileReq("conv2d", 2);
    req.strategy = "yolo";
    ASSERT_TRUE(c.call(req, &resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, ErrorKind::BadRequest);

    req = compileReq("conv2d", 3);
    req.tier = "quantum";
    ASSERT_TRUE(c.call(req, &resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, ErrorKind::BadRequest);

    // Typed rejections never wedge the daemon.
    Request good = compileReq("conv2d", 4, {8, 8});
    ASSERT_TRUE(c.call(good, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok) << resp.message;
}

TEST_F(ServiceTest, ConcurrentClientsGetBitIdenticalResults)
{
    auto srv = startServer();

    const std::vector<std::string> workloads = {"conv2d", "2mm",
                                                "gemver"};
    std::vector<std::string> expected;
    for (const auto &w : workloads)
        expected.push_back(directHash(compileReq(w, 0)));

    const int kClients = 6;
    std::vector<std::thread> threads;
    std::vector<std::string> failures(kClients);
    std::vector<std::vector<std::string>> hashes(
        kClients, std::vector<std::string>(workloads.size()));
    for (int i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            Client c;
            std::string err;
            if (!c.connect(srv->socketPath(), &err)) {
                failures[i] = "connect: " + err;
                return;
            }
            for (size_t w = 0; w < workloads.size(); ++w) {
                Request req =
                    compileReq(workloads[w], uint64_t(i * 100 + w));
                Response resp;
                if (!c.call(req, &resp, &err)) {
                    failures[i] = "call: " + err;
                    return;
                }
                if (!resp.ok) {
                    failures[i] = "response: " + resp.message;
                    return;
                }
                hashes[i][w] = resp.bufferHash;
            }
        });
    for (auto &t : threads)
        t.join();

    for (int i = 0; i < kClients; ++i) {
        EXPECT_TRUE(failures[i].empty())
            << "client " << i << ": " << failures[i];
        for (size_t w = 0; w < workloads.size(); ++w)
            EXPECT_EQ(hashes[i][w], expected[w])
                << "client " << i << " workload " << workloads[w];
    }

    // `completed` ticks just *after* the response frame is written,
    // so a client can observe its reply before the counter moves:
    // give the workers a moment to settle.
    ServerStats stats = srv->stats();
    for (int spin = 0;
         spin < 1000 && stats.completed < stats.accepted; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        stats = srv->stats();
    }
    EXPECT_EQ(stats.accepted, uint64_t(kClients) * workloads.size());
    EXPECT_EQ(stats.completed, stats.accepted);
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_EQ(stats.errors, 0u);
}

TEST_F(ServiceTest, DeadlineExpiresToTypedTimeout)
{
    auto srv = startServer();
    Client c = connectTo(*srv);

    // camera is the registry's 16-stage pipeline: its compile cannot
    // finish inside a 0.01 ms allowance, whichever of the three
    // checkpoints (queue, budget trip, post-compile) catches it.
    Request req = compileReq("camera", 1);
    req.deadlineMs = 0.01;
    Response resp;
    std::string err;
    ASSERT_TRUE(c.call(req, &resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, ErrorKind::Timeout) << resp.message;

    EXPECT_EQ(srv->stats().timeouts, 1u);

    // A deadline miss poisons nothing: the same request without a
    // deadline completes.
    Request calm = compileReq("conv2d", 2, {8, 8});
    ASSERT_TRUE(c.call(calm, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok) << resp.message;
}

TEST_F(ServiceTest, OverloadShedsWithTypedErrorAndDaemonStaysLive)
{
    // One worker, queue depth 2: the third concurrent compile sheds.
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    ServerOptions opts;
    opts.workers = 1;
    opts.maxQueueDepth = 2;
    opts.handlerHook = [&](const Request &) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
    };
    auto srv = startServer(std::move(opts));

    Client c1 = connectTo(*srv);
    Client c2 = connectTo(*srv);
    Client c3 = connectTo(*srv);
    std::string err;

    // Admit #1 (parks in the hook) and #2 (queued), in order.
    ASSERT_TRUE(writeFrame(c1.fd(),
                           encodeRequest(compileReq("conv2d", 1,
                                                    {8, 8})),
                           &err))
        << err;
    while (srv->stats().accepted < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(writeFrame(c2.fd(),
                           encodeRequest(compileReq("conv2d", 2,
                                                    {8, 8})),
                           &err))
        << err;
    while (srv->stats().accepted < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // #3 exceeds the depth cap: shed immediately, typed, while the
    // first two are still in flight.
    Request shedme = compileReq("conv2d", 3, {8, 8});
    Response resp;
    Client cshed = std::move(c3);
    ASSERT_TRUE(cshed.call(shedme, &resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, ErrorKind::Overloaded);
    EXPECT_NE(resp.message.find("queue depth"), std::string::npos)
        << resp.message;
    EXPECT_EQ(srv->stats().shed, 1u);

    // Release the parked workers; both admitted requests complete.
    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    std::string payload;
    ASSERT_EQ(readFrame(c1.fd(), &payload, &err), FrameStatus::Ok)
        << err;
    ASSERT_TRUE(decodeResponse(payload, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok) << resp.message;
    ASSERT_EQ(readFrame(c2.fd(), &payload, &err), FrameStatus::Ok)
        << err;
    ASSERT_TRUE(decodeResponse(payload, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok) << resp.message;

    // The daemon recovered: a fresh request succeeds. Admission
    // slots free a beat after the replies land (the guard destructor
    // runs after the response write), so `overloaded` here means
    // "come back later" -- retry briefly, never accept other kinds.
    bool recovered = false;
    for (int attempt = 0; attempt < 1000 && !recovered; ++attempt) {
        ASSERT_TRUE(
            cshed.call(compileReq("conv2d", 4, {8, 8}), &resp, &err))
            << err;
        if (resp.ok) {
            recovered = true;
        } else {
            ASSERT_EQ(resp.kind, ErrorKind::Overloaded)
                << resp.message;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    }
    EXPECT_TRUE(recovered);
}

TEST_F(ServiceTest, InflightByteCapShedsToo)
{
    ServerOptions opts;
    opts.maxInflightBytes = 1; // any request frame exceeds this
    auto srv = startServer(std::move(opts));
    Client c = connectTo(*srv);

    Response resp;
    std::string err;
    ASSERT_TRUE(c.call(compileReq("conv2d", 1), &resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, ErrorKind::Overloaded);
    EXPECT_NE(resp.message.find("byte cap"), std::string::npos)
        << resp.message;
    EXPECT_EQ(srv->stats().shed, 1u);
}

// ---------------------------------------------------------------
// Chaos sweep: every failpoint site fires once through the server.
// The poisoned request must come back as a typed error or a graceful
// degrade, and every subsequent request must stay bit-identical.
// ---------------------------------------------------------------

TEST_F(ServiceTest, ChaosSweepEveryFailpointSite)
{
    auto srv = startServer();
    Client c = connectTo(*srv);
    std::string err;

    // The clean baseline every post-poison probe must reproduce.
    const Request baseline = compileReq("conv2d", 999, {4, 4});
    Response resp;
    ASSERT_TRUE(c.call(baseline, &resp, &err)) << err;
    ASSERT_TRUE(resp.ok) << resp.message;
    const std::string baselineHash = resp.bufferHash;
    ASSERT_FALSE(baselineHash.empty());

    enum Expect
    {
        TypedError,     ///< resp.ok == false with the given kind
        OkDegraded,     ///< ok, but the strategy ladder downgraded
        OkBytecodeTier, ///< ok, native degraded to bytecode
        OkDegradedPar,  ///< ok, parallel planning degraded
        OkUntouched,    ///< site not on the service path: no effect
    };
    struct Case
    {
        const char *site;
        failpoints::Action action;
        Expect expect;
        ErrorKind kind; ///< for TypedError
    };
    const Case cases[] = {
        // The service's own handler entry.
        {"service.handle", failpoints::Action::Fatal, TypedError,
         ErrorKind::Fatal},
        {"service.handle", failpoints::Action::Panic, TypedError,
         ErrorKind::Panic},
        {"service.handle", failpoints::Action::Error, TypedError,
         ErrorKind::Internal},
        {"service.handle", failpoints::Action::BadAlloc, TypedError,
         ErrorKind::Internal},
        // A budget trip before the ladder can absorb it: with no
        // deadline and no shutdown, it still must answer typed.
        {"service.handle", failpoints::Action::Budget, TypedError,
         ErrorKind::Timeout},
        // Presburger layer.
        {"pres.parse", failpoints::Action::Fatal, TypedError,
         ErrorKind::Fatal},
        {"pres.eliminateCol", failpoints::Action::Fatal, TypedError,
         ErrorKind::Fatal},
        {"pres.simplifyRows", failpoints::Action::Panic, TypedError,
         ErrorKind::Panic},
        // Core transformation + codegen layer.
        {"core.compose", failpoints::Action::Fatal, TypedError,
         ErrorKind::Fatal},
        {"core.footprint", failpoints::Action::Fatal, TypedError,
         ErrorKind::Fatal},
        {"codegen.generate", failpoints::Action::Fatal, TypedError,
         ErrorKind::Fatal},
        // Budget trips ride the strategy-fallback ladder instead of
        // erroring: a downgraded artifact is a success.
        {"core.compose", failpoints::Action::Budget, OkDegraded,
         ErrorKind::None},
        // Native tier: transient failures degrade to bytecode after
        // retries; the request still succeeds bit-identically.
        {"exec.native.compile", failpoints::Action::Error,
         OkBytecodeTier, ErrorKind::None},
        {"exec.native.transient", failpoints::Action::Error,
         OkBytecodeTier, ErrorKind::None},
        {"exec.native.dlopen", failpoints::Action::Error,
         OkBytecodeTier, ErrorKind::None},
        // Parallel planning degrades to the sequential path.
        {"exec.par.spawn", failpoints::Action::Error, OkDegradedPar,
         ErrorKind::None},
        {"exec.par.tilegraph", failpoints::Action::Error,
         OkDegradedPar, ErrorKind::None},
        // Batch-driver site: not on the service path, so arming it
        // must not disturb a service request.
        {"driver.job.conv2d", failpoints::Action::Fatal, OkUntouched,
         ErrorKind::None},
    };

    uint64_t id = 1000;
    int64_t tile = 5;
    for (const Case &cs : cases) {
        SCOPED_TRACE(std::string(cs.site) + " / " +
                     std::to_string(int(cs.action)));
        failpoints::set(cs.site, cs.action);

        // Unique tiles defeat the kernel cache: a cache hit would
        // skip the poisoned pipeline and mask the failure.
        Request poisoned =
            compileReq("conv2d", ++id, {tile, tile + 1});
        tile += 2;
        if (cs.expect == OkBytecodeTier) {
            poisoned.tier = "native";
        } else if (cs.expect == OkDegradedPar) {
            poisoned.threads = 2;
            poisoned.par =
                std::strcmp(cs.site, "exec.par.tilegraph") == 0
                    ? "graph"
                    : "static";
        }

        ASSERT_TRUE(c.call(poisoned, &resp, &err))
            << cs.site << ": " << err;
        // Disarm before computing any in-process reference hash:
        // directHash compiles through the same global failpoints.
        failpoints::clearAll();
        switch (cs.expect) {
        case TypedError:
            EXPECT_FALSE(resp.ok) << cs.site;
            EXPECT_EQ(resp.kind, cs.kind)
                << cs.site << ": " << resp.message;
            break;
        case OkDegraded: {
            ASSERT_TRUE(resp.ok) << cs.site << ": " << resp.message;
            EXPECT_TRUE(resp.downgraded) << cs.site;
            EXPECT_FALSE(resp.fallbackTrail.empty()) << cs.site;
            // Correct for the strategy it actually landed on.
            Request ref = poisoned;
            ref.strategy = resp.strategy;
            EXPECT_EQ(resp.bufferHash, directHash(ref)) << cs.site;
            break;
        }
        case OkBytecodeTier: {
            ASSERT_TRUE(resp.ok) << cs.site << ": " << resp.message;
            EXPECT_EQ(resp.tier, "bytecode") << cs.site;
            EXPECT_EQ(resp.requestedTier, "native") << cs.site;
            Request ref = poisoned;
            ref.tier = "bytecode";
            EXPECT_EQ(resp.bufferHash, directHash(ref)) << cs.site;
            break;
        }
        case OkDegradedPar: {
            ASSERT_TRUE(resp.ok) << cs.site << ": " << resp.message;
            // Degraded parallel planning means a sequential run.
            Request ref = poisoned;
            ref.par = "off";
            ref.threads = 1;
            EXPECT_EQ(resp.bufferHash, directHash(ref)) << cs.site;
            break;
        }
        case OkUntouched:
            ASSERT_TRUE(resp.ok) << cs.site << ": " << resp.message;
            EXPECT_EQ(resp.bufferHash, directHash(poisoned))
                << cs.site;
            break;
        }

        // Demand a perfect follow-up: the poisoned request must not
        // have wedged workers, accounting, or the connection.
        Request probe = baseline;
        probe.id = ++id;
        ASSERT_TRUE(c.call(probe, &resp, &err))
            << cs.site << ": " << err;
        ASSERT_TRUE(resp.ok) << cs.site << ": " << resp.message;
        EXPECT_EQ(resp.bufferHash, baselineHash) << cs.site;
    }

    // Nothing leaked: admissions balance completions (the counter
    // ticks just after the reply is written, so settle briefly).
    ServerStats stats = srv->stats();
    for (int spin = 0;
         spin < 1000 && stats.completed < stats.accepted; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        stats = srv->stats();
    }
    EXPECT_EQ(stats.completed, stats.accepted);
}

TEST_F(ServiceTest, TransientNativeFailureRetriesThenDegrades)
{
    std::vector<double> delays;
    std::mutex delaysMu;
    ServerOptions opts;
    opts.nativeRetry.attempts = 3;
    opts.nativeRetry.baseMs = 1.0;
    opts.nativeRetry.multiplier = 2.0;
    opts.nativeRetry.sleep = [&](double ms) {
        std::lock_guard<std::mutex> lock(delaysMu);
        delays.push_back(ms);
    };
    auto srv = startServer(std::move(opts));
    Client c = connectTo(*srv);
    std::string err;

    failpoints::set("exec.native.transient",
                    failpoints::Action::Error);
    Request req = compileReq("conv2d", 1, {8, 8});
    req.tier = "native";
    Response resp;
    ASSERT_TRUE(c.call(req, &resp, &err)) << err;
    ASSERT_TRUE(resp.ok) << resp.message;
    EXPECT_EQ(resp.tier, "bytecode");
    EXPECT_FALSE(resp.tierFallbackReason.empty());

    if (exec::NativeKernel::toolchainAvailable()) {
        // The failpoint sits past the toolchain probe: every attempt
        // was transient, so the full schedule ran.
        EXPECT_EQ(resp.retries, 2u);
        {
            std::lock_guard<std::mutex> lock(delaysMu);
            ASSERT_EQ(delays.size(), 2u);
            EXPECT_DOUBLE_EQ(delays[0], 1.0);
            EXPECT_DOUBLE_EQ(delays[1], 2.0);
        }
        EXPECT_EQ(srv->stats().retries, 2u);

        // Transient failures are not memoized: with the failpoint
        // cleared, the *same* cached artifact compiles native on the
        // next request.
        failpoints::clearAll();
        Request again = req;
        again.id = 2;
        ASSERT_TRUE(c.call(again, &resp, &err)) << err;
        ASSERT_TRUE(resp.ok) << resp.message;
        EXPECT_TRUE(resp.fromCache);
        EXPECT_EQ(resp.tier, "native");
        EXPECT_EQ(resp.retries, 0u);
    } else {
        // No toolchain: the probe fails permanently before the
        // failpoint, so the degrade happens without retries.
        EXPECT_EQ(resp.retries, 0u);
    }
}

TEST_F(ServiceTest, DrainAnswersQueuedShutdownAndInflightCancelled)
{
    // One worker; the first request parks in the handler hook for
    // longer than the drain deadline, the second waits behind it in
    // the queue. stop() must answer the queued one with `shutdown`
    // (its closure is destroyed unrun) and the parked one with
    // `cancelled` (the server token trips its budget when the drain
    // deadline passes).
    ServerOptions opts;
    opts.workers = 1;
    opts.drainMs = 100;
    std::atomic<int> parked{0};
    opts.handlerHook = [&](const Request &req) {
        if (req.id == 1) {
            ++parked;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(600));
        }
    };
    auto srv = startServer(std::move(opts));

    std::string errA, errB;
    Response respA, respB;
    bool okA = false, okB = false;
    std::thread ta([&] {
        Client c;
        if (!c.connect(srv->socketPath(), &errA))
            return;
        okA = c.call(compileReq("conv2d", 1, {8, 8}), &respA, &errA);
    });
    while (parked.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::thread tb([&] {
        Client c;
        if (!c.connect(srv->socketPath(), &errB))
            return;
        okB = c.call(compileReq("conv2d", 2, {8, 8}), &respB, &errB);
    });
    while (srv->stats().accepted < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    srv->stop();
    ta.join();
    tb.join();

    ASSERT_TRUE(okA) << errA;
    EXPECT_FALSE(respA.ok);
    EXPECT_EQ(respA.kind, ErrorKind::Cancelled) << respA.message;
    ASSERT_TRUE(okB) << errB;
    EXPECT_FALSE(respB.ok);
    EXPECT_EQ(respB.kind, ErrorKind::Shutdown) << respB.message;

    // Every admission produced exactly one response.
    ServerStats stats = srv->stats();
    EXPECT_EQ(stats.accepted, 2u);
    EXPECT_EQ(stats.completed, 2u);
}

TEST_F(ServiceTest, ShutdownOpWakesBlockingWait)
{
    // Regression: the shutdown op must publish the flag under the
    // server mutex, or this blocking (ms <= 0) wait can miss the
    // wakeup forever.
    auto srv = startServer();
    std::thread waiter([&] { srv->waitForShutdownRequest(); });

    Client c = connectTo(*srv);
    Request shutdown;
    shutdown.op = "shutdown";
    shutdown.id = 1;
    Response resp;
    std::string err;
    ASSERT_TRUE(c.call(shutdown, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    waiter.join(); // hangs here if the wakeup was lost
    srv->stop();
}

/** Open fds of this process (-1 if /proc is unavailable). */
int
countOpenFds()
{
    DIR *d = ::opendir("/proc/self/fd");
    if (!d)
        return -1;
    int n = 0;
    while (::readdir(d))
        ++n;
    ::closedir(d);
    return n;
}

TEST_F(ServiceTest, ConnectionChurnReclaimsFds)
{
    auto srv = startServer();

    auto ping = [&](uint64_t id) {
        Client c = connectTo(*srv);
        Request req;
        req.op = "ping";
        req.id = id;
        Response resp;
        std::string err;
        ASSERT_TRUE(c.call(req, &resp, &err)) << err;
        EXPECT_TRUE(resp.ok);
    };

    // Warm up one connect/disconnect cycle, then let its reader
    // reap so the baseline is a settled daemon.
    ping(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const int baseline = countOpenFds();
    if (baseline < 0)
        GTEST_SKIP() << "/proc/self/fd unavailable";

    // 50 connect/request/disconnect cycles: each must release its
    // server-side fd and reader thread, not park them until stop().
    for (uint64_t i = 2; i < 52; ++i)
        ping(i);

    // Readers reap themselves asynchronously just after the client
    // sees EOF: poll until the fd count settles back.
    int now = countOpenFds();
    for (int spin = 0; spin < 2000 && now > baseline; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        now = countOpenFds();
    }
    EXPECT_LE(now, baseline);

    // And the daemon still accepts fresh connections.
    ping(99);
}

TEST_F(ServiceTest, ClientRecvTimeoutCoversWedgedServer)
{
    // Park the one worker indefinitely: the server never answers.
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    ServerOptions opts;
    opts.workers = 1;
    opts.drainMs = 100;
    opts.handlerHook = [&](const Request &) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
    };
    auto srv = startServer(std::move(opts));

    Client c = connectTo(*srv);
    c.setRecvTimeout(100);
    Response resp;
    std::string err;
    EXPECT_FALSE(c.call(compileReq("conv2d", 1, {8, 8}), &resp,
                        &err));
    EXPECT_NE(err.find("timed out"), std::string::npos) << err;
    // A timed-out connection is out of sync and therefore dead.
    EXPECT_FALSE(c.connected());

    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    srv->stop();
}

TEST_F(ServiceTest, StopIsIdempotentAndStaleSocketsAreReclaimed)
{
    std::string path;
    {
        auto srv = startServer();
        path = srv->socketPath();
        srv->stop();
        srv->stop(); // second stop is a no-op
    }
    // A dead daemon's socket path binds again (stale unlink).
    Server second(path);
    std::string err;
    ASSERT_TRUE(second.start(&err)) << err;
    Client c;
    ASSERT_TRUE(c.connect(path, &err)) << err;
    Request ping;
    ping.op = "ping";
    ping.id = 1;
    Response resp;
    ASSERT_TRUE(c.call(ping, &resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    second.stop();

    // start() refuses an over-long path instead of truncating.
    Server bad(std::string(300, 'x'));
    EXPECT_FALSE(bad.start(&err));
    EXPECT_NE(err.find("longer"), std::string::npos) << err;
}

} // namespace
} // namespace service
} // namespace polyfuse
