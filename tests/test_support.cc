/**
 * @file
 * Unit tests for the support layer: checked math, rationals, string
 * helpers, diagnostics.
 */

#include <gtest/gtest.h>

#include "support/intmath.hh"
#include "support/logging.hh"
#include "support/rational.hh"
#include "support/strutil.hh"

namespace polyfuse {
namespace {

TEST(IntMath, FloorDivMatchesMathematicalDefinition)
{
    EXPECT_EQ(floorDiv(7, 2), 3);
    EXPECT_EQ(floorDiv(-7, 2), -4);
    EXPECT_EQ(floorDiv(7, -2), -4);
    EXPECT_EQ(floorDiv(-7, -2), 3);
    EXPECT_EQ(floorDiv(6, 3), 2);
    EXPECT_EQ(floorDiv(-6, 3), -2);
    EXPECT_EQ(floorDiv(0, 5), 0);
}

TEST(IntMath, CeilDivMatchesMathematicalDefinition)
{
    EXPECT_EQ(ceilDiv(7, 2), 4);
    EXPECT_EQ(ceilDiv(-7, 2), -3);
    EXPECT_EQ(ceilDiv(7, -2), -3);
    EXPECT_EQ(ceilDiv(-7, -2), 4);
    EXPECT_EQ(ceilDiv(6, 3), 2);
}

TEST(IntMath, FloorModIsAlwaysNonNegativeForPositiveDivisor)
{
    for (int64_t a = -10; a <= 10; ++a) {
        int64_t m = floorMod(a, 4);
        EXPECT_GE(m, 0);
        EXPECT_LT(m, 4);
        EXPECT_EQ(floorDiv(a, 4) * 4 + m, a);
    }
}

TEST(IntMath, GcdAndLcm)
{
    EXPECT_EQ(gcd(12, 18), 6);
    EXPECT_EQ(gcd(-12, 18), 6);
    EXPECT_EQ(gcd(0, 5), 5);
    EXPECT_EQ(gcd(0, 0), 0);
    EXPECT_EQ(lcm(4, 6), 12);
    EXPECT_EQ(lcm(0, 6), 0);
}

TEST(IntMath, OverflowDetection)
{
    EXPECT_THROW(checkedMul(INT64_MAX, 2), PanicError);
    EXPECT_THROW(checkedAdd(INT64_MAX, 1), PanicError);
    EXPECT_THROW(checkedSub(INT64_MIN, 1), PanicError);
    EXPECT_EQ(checkedMul(1 << 20, 1 << 20), int64_t(1) << 40);
}

TEST(Rational, ArithmeticAndComparison)
{
    Rational a(1, 2), b(1, 3);
    EXPECT_EQ((a + b), Rational(5, 6));
    EXPECT_EQ((a - b), Rational(1, 6));
    EXPECT_EQ((a * b), Rational(1, 6));
    EXPECT_EQ((a / b), Rational(3, 2));
    EXPECT_TRUE(b < a);
    EXPECT_TRUE(a >= b);
}

TEST(Rational, NormalizationAndRounding)
{
    EXPECT_EQ(Rational(2, 4), Rational(1, 2));
    EXPECT_EQ(Rational(1, -2), Rational(-1, 2));
    EXPECT_EQ(Rational(7, 2).floor(), 3);
    EXPECT_EQ(Rational(7, 2).ceil(), 4);
    EXPECT_EQ(Rational(-7, 2).floor(), -4);
    EXPECT_EQ(Rational(-7, 2).ceil(), -3);
    EXPECT_THROW(Rational(1, 0), PanicError);
}

TEST(StrUtil, JoinAndSplit)
{
    std::vector<std::string> v{"a", "b", "c"};
    EXPECT_EQ(join(v, ", "), "a, b, c");
    EXPECT_EQ(split("a,b,c", ',').size(), 3u);
    EXPECT_EQ(split("a,b,c", ',')[1], "b");
    EXPECT_TRUE(split("", ',').empty());
}

TEST(StrUtil, TrimAndFormat)
{
    EXPECT_EQ(trim("  x y \n"), "x y");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(strformat("%d-%s", 3, "x"), "3-x");
}

TEST(Logging, FatalAndPanicThrowDistinctTypes)
{
    EXPECT_THROW(fatal("user error"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    try {
        fatal("message text");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "message text");
    }
}

} // namespace
} // namespace polyfuse
