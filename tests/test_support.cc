/**
 * @file
 * Unit tests for the support layer: checked math, rationals, string
 * helpers, diagnostics.
 */

#include <gtest/gtest.h>

#include <vector>

#include <atomic>

#include <condition_variable>
#include <mutex>

#include "support/intmath.hh"
#include "support/logging.hh"
#include "support/lru.hh"
#include "support/rational.hh"
#include "support/retry.hh"
#include "support/small_vec.hh"
#include "support/strutil.hh"
#include "support/thread_pool.hh"

namespace polyfuse {
namespace {

TEST(IntMath, FloorDivMatchesMathematicalDefinition)
{
    EXPECT_EQ(floorDiv(7, 2), 3);
    EXPECT_EQ(floorDiv(-7, 2), -4);
    EXPECT_EQ(floorDiv(7, -2), -4);
    EXPECT_EQ(floorDiv(-7, -2), 3);
    EXPECT_EQ(floorDiv(6, 3), 2);
    EXPECT_EQ(floorDiv(-6, 3), -2);
    EXPECT_EQ(floorDiv(0, 5), 0);
}

TEST(IntMath, CeilDivMatchesMathematicalDefinition)
{
    EXPECT_EQ(ceilDiv(7, 2), 4);
    EXPECT_EQ(ceilDiv(-7, 2), -3);
    EXPECT_EQ(ceilDiv(7, -2), -3);
    EXPECT_EQ(ceilDiv(-7, -2), 4);
    EXPECT_EQ(ceilDiv(6, 3), 2);
}

TEST(IntMath, FloorModIsAlwaysNonNegativeForPositiveDivisor)
{
    for (int64_t a = -10; a <= 10; ++a) {
        int64_t m = floorMod(a, 4);
        EXPECT_GE(m, 0);
        EXPECT_LT(m, 4);
        EXPECT_EQ(floorDiv(a, 4) * 4 + m, a);
    }
}

TEST(IntMath, GcdAndLcm)
{
    EXPECT_EQ(gcd(12, 18), 6);
    EXPECT_EQ(gcd(-12, 18), 6);
    EXPECT_EQ(gcd(0, 5), 5);
    EXPECT_EQ(gcd(0, 0), 0);
    EXPECT_EQ(lcm(4, 6), 12);
    EXPECT_EQ(lcm(0, 6), 0);
}

TEST(IntMath, OverflowDetection)
{
    EXPECT_THROW(checkedMul(INT64_MAX, 2), PanicError);
    EXPECT_THROW(checkedAdd(INT64_MAX, 1), PanicError);
    EXPECT_THROW(checkedSub(INT64_MIN, 1), PanicError);
    EXPECT_EQ(checkedMul(1 << 20, 1 << 20), int64_t(1) << 40);
}

TEST(Rational, ArithmeticAndComparison)
{
    Rational a(1, 2), b(1, 3);
    EXPECT_EQ((a + b), Rational(5, 6));
    EXPECT_EQ((a - b), Rational(1, 6));
    EXPECT_EQ((a * b), Rational(1, 6));
    EXPECT_EQ((a / b), Rational(3, 2));
    EXPECT_TRUE(b < a);
    EXPECT_TRUE(a >= b);
}

TEST(Rational, NormalizationAndRounding)
{
    EXPECT_EQ(Rational(2, 4), Rational(1, 2));
    EXPECT_EQ(Rational(1, -2), Rational(-1, 2));
    EXPECT_EQ(Rational(7, 2).floor(), 3);
    EXPECT_EQ(Rational(7, 2).ceil(), 4);
    EXPECT_EQ(Rational(-7, 2).floor(), -4);
    EXPECT_EQ(Rational(-7, 2).ceil(), -3);
    EXPECT_THROW(Rational(1, 0), PanicError);
}

TEST(StrUtil, JoinAndSplit)
{
    std::vector<std::string> v{"a", "b", "c"};
    EXPECT_EQ(join(v, ", "), "a, b, c");
    EXPECT_EQ(split("a,b,c", ',').size(), 3u);
    EXPECT_EQ(split("a,b,c", ',')[1], "b");
    EXPECT_TRUE(split("", ',').empty());
}

TEST(StrUtil, TrimAndFormat)
{
    EXPECT_EQ(trim("  x y \n"), "x y");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(strformat("%d-%s", 3, "x"), "3-x");
}

TEST(Logging, FatalAndPanicThrowDistinctTypes)
{
    EXPECT_THROW(fatal("user error"), FatalError);
    EXPECT_THROW(panic("bug"), PanicError);
    try {
        fatal("message text");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "message text");
    }
}

using Vec4 = support::SmallVec<int64_t, 4>;

TEST(SmallVec, StaysInlineUpToCapacityThenSpills)
{
    Vec4 v;
    EXPECT_TRUE(v.empty());
    EXPECT_TRUE(v.isInline());
    EXPECT_EQ(v.capacity(), 4u);
    for (int64_t i = 0; i < 4; ++i)
        v.push_back(i);
    EXPECT_TRUE(v.isInline());
    v.push_back(4); // first element past the inline buffer
    EXPECT_FALSE(v.isInline());
    EXPECT_GE(v.capacity(), 5u);
    for (int64_t i = 0; i < 5; ++i)
        EXPECT_EQ(v[size_t(i)], i);
}

TEST(SmallVec, GrowthPreservesContentsAcrossManyDoublings)
{
    Vec4 v;
    std::vector<int64_t> ref;
    for (int64_t i = 0; i < 100; ++i) {
        v.push_back(i * 3 - 7);
        ref.push_back(i * 3 - 7);
    }
    EXPECT_EQ(v, ref);
    EXPECT_EQ(v.front(), ref.front());
    EXPECT_EQ(v.back(), ref.back());
}

TEST(SmallVec, ConstructorsMatchStdVectorSemantics)
{
    Vec4 filled(3, 9);
    EXPECT_EQ(filled, (std::vector<int64_t>{9, 9, 9}));
    Vec4 il{1, 2, 3, 4, 5, 6};
    EXPECT_FALSE(il.isInline());
    std::vector<int64_t> src{7, 8};
    Vec4 range(src.begin(), src.end());
    EXPECT_EQ(range, src);
}

TEST(SmallVec, CopySpilledAndInline)
{
    Vec4 small{1, 2};
    Vec4 big{1, 2, 3, 4, 5, 6, 7};
    Vec4 c1(small), c2(big);
    EXPECT_EQ(c1, small);
    EXPECT_EQ(c2, big);
    // Deep copy: mutating the copy leaves the original alone.
    c2[0] = 99;
    EXPECT_EQ(big[0], 1);
    c1 = big;
    EXPECT_EQ(c1, big);
    c2 = small;
    EXPECT_EQ(c2, small);
}

TEST(SmallVec, MoveStealsHeapAndCopiesInline)
{
    Vec4 big{1, 2, 3, 4, 5, 6, 7};
    const int64_t *heap = big.data();
    Vec4 stolen(std::move(big));
    EXPECT_EQ(stolen.data(), heap); // heap storage is stolen, not copied
    EXPECT_TRUE(big.empty());       // moved-from: empty but usable
    big.push_back(42);
    EXPECT_EQ(big.back(), 42);

    Vec4 small{5, 6};
    Vec4 moved(std::move(small));
    EXPECT_EQ(moved, (std::vector<int64_t>{5, 6}));
    EXPECT_TRUE(moved.isInline());
    Vec4 target{9, 9, 9, 9, 9, 9};
    target = std::move(moved);
    EXPECT_EQ(target, (std::vector<int64_t>{5, 6}));
}

TEST(SmallVec, SelfAssignmentIsANoOp)
{
    Vec4 v{1, 2, 3, 4, 5, 6};
    Vec4 &alias = v;
    v = alias;
    EXPECT_EQ(v, (std::vector<int64_t>{1, 2, 3, 4, 5, 6}));
    v = std::move(alias);
    EXPECT_EQ(v, (std::vector<int64_t>{1, 2, 3, 4, 5, 6}));
}

TEST(SmallVec, InsertEraseResizeMatchStdVector)
{
    Vec4 v{1, 2, 3};
    std::vector<int64_t> ref{1, 2, 3};
    v.insert(v.begin() + 1, 7);
    ref.insert(ref.begin() + 1, 7);
    v.insert(v.begin(), 2, 0); // forces the spill mid-insert
    ref.insert(ref.begin(), 2, 0);
    EXPECT_EQ(v, ref);
    v.erase(v.begin() + 1, v.begin() + 3);
    ref.erase(ref.begin() + 1, ref.begin() + 3);
    EXPECT_EQ(v, ref);
    v.resize(8, -1);
    ref.resize(8, -1);
    EXPECT_EQ(v, ref);
    v.resize(2);
    ref.resize(2);
    EXPECT_EQ(v, ref);
    v.pop_back();
    ref.pop_back();
    EXPECT_EQ(v, ref);
}

TEST(SmallVec, OrderingIsLexicographic)
{
    EXPECT_LT((Vec4{1, 2}), (Vec4{1, 3}));
    EXPECT_LT((Vec4{1, 2}), (Vec4{1, 2, 0}));
    EXPECT_FALSE((Vec4{2}) < (Vec4{1, 9, 9}));
    EXPECT_FALSE((Vec4{1, 2}) < (Vec4{1, 2}));
}

TEST(SmallVec, ScopedForceHeapSpillsEverythingOnThisThread)
{
    {
        support::ScopedForceHeap force;
        Vec4 v{1, 2};
        EXPECT_FALSE(v.isInline());
        EXPECT_EQ(v, (std::vector<int64_t>{1, 2}));
        {
            support::ScopedForceHeap nested;
            Vec4 w(1, 5);
            EXPECT_FALSE(w.isInline());
        }
        Vec4 still{3};
        EXPECT_FALSE(still.isInline()); // nesting restores, not clears
    }
    Vec4 after{1};
    EXPECT_TRUE(after.isInline());
}

TEST(ThreadPoolParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, 1000, 7, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            hits[size_t(i)].fetch_add(1,
                                      std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    EXPECT_EQ(pool.failureCount(), 0u);
}

TEST(ThreadPoolParallelFor, EmptyAndSingleRangesAreHandled)
{
    ThreadPool pool(2);
    std::atomic<int64_t> sum{0};
    pool.parallelFor(5, 5, 1, [&](int64_t, int64_t) {
        sum.fetch_add(1);
    });
    EXPECT_EQ(sum.load(), 0);
    pool.parallelFor(5, 6, 1, [&](int64_t lo, int64_t hi) {
        sum.fetch_add(hi - lo);
    });
    EXPECT_EQ(sum.load(), 1);
}

TEST(ThreadPoolParallelFor, AutoGrainSplitsAcrossWorkers)
{
    ThreadPool pool(3);
    std::atomic<int> chunks{0};
    std::atomic<int64_t> covered{0};
    pool.parallelFor(0, 100, 0, [&](int64_t lo, int64_t hi) {
        chunks.fetch_add(1);
        covered.fetch_add(hi - lo);
    });
    EXPECT_EQ(covered.load(), 100);
    EXPECT_GT(chunks.load(), 1);
}

TEST(LruMap, EvictsLeastRecentlyUsedFirst)
{
    LruMap<int, std::string> lru(3);
    EXPECT_EQ(lru.insert(1, "a"), 0u);
    EXPECT_EQ(lru.insert(2, "b"), 0u);
    EXPECT_EQ(lru.insert(3, "c"), 0u);
    // Touch 1 so 2 becomes the coldest.
    ASSERT_NE(lru.find(1), nullptr);
    EXPECT_EQ(lru.insert(4, "d"), 1u);
    EXPECT_EQ(lru.find(2), nullptr); // evicted
    EXPECT_NE(lru.find(1), nullptr);
    EXPECT_NE(lru.find(3), nullptr);
    EXPECT_NE(lru.find(4), nullptr);
    EXPECT_EQ(lru.size(), 3u);
}

TEST(LruMap, WeightedCapacityAndOverwrite)
{
    LruMap<int, int> lru(10);
    lru.insert(1, 100, 4);
    lru.insert(2, 200, 4);
    EXPECT_EQ(lru.weight(), 8u);
    // Overwriting replaces the weight, it does not accumulate.
    lru.insert(1, 101, 6);
    EXPECT_EQ(lru.size(), 2u);
    EXPECT_EQ(lru.weight(), 10u);
    ASSERT_NE(lru.find(1), nullptr);
    EXPECT_EQ(*lru.find(1), 101);
    // One more unit evicts the coldest entry (2).
    EXPECT_EQ(lru.insert(3, 300, 1), 1u);
    EXPECT_EQ(lru.find(2), nullptr);
}

TEST(LruMap, SetCapacityShrinksAndFindIsStable)
{
    LruMap<int, int> lru(8);
    for (int i = 0; i < 8; ++i)
        lru.insert(i, i * 10);
    int *p = lru.find(7);
    ASSERT_NE(p, nullptr);
    // Shrinking evicts the coldest entries; the bumped 7 survives,
    // and its address stays valid (splice moves nodes, not values).
    EXPECT_EQ(lru.setCapacity(2), 6u);
    EXPECT_EQ(lru.size(), 2u);
    EXPECT_EQ(lru.find(0), nullptr);
    ASSERT_NE(lru.find(7), nullptr);
    EXPECT_EQ(lru.find(7), p);
    lru.clear();
    EXPECT_EQ(lru.size(), 0u);
    EXPECT_EQ(lru.weight(), 0u);
}

TEST(LruMap, OversizedEntryIsEvictedWithEverythingElse)
{
    // An entry heavier than the whole capacity cannot fit even
    // alone: the insert evicts the old entries AND the new one.
    LruMap<int, int> lru(4);
    lru.insert(1, 10);
    lru.insert(2, 20);
    EXPECT_EQ(lru.insert(3, 30, 100), 3u);
    EXPECT_EQ(lru.size(), 0u);
    EXPECT_EQ(lru.weight(), 0u);
    EXPECT_EQ(lru.find(3), nullptr);
}

TEST(ThreadPoolDrain, CompletesEverythingInsideTheDeadline)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(pool.submit([&] { ++ran; }));
    ThreadPool::DrainResult dr = pool.drain(/*deadlineMs=*/5000);
    EXPECT_TRUE(dr.completed);
    EXPECT_EQ(dr.abandoned, 0u);
    EXPECT_EQ(ran.load(), 8);
    EXPECT_TRUE(pool.draining());
}

TEST(ThreadPoolDrain, AbandonsQueuedJobsAndRunsTheirDestructors)
{
    // One worker parked on a latch; everything queued behind it is
    // abandoned when the drain deadline expires -- but abandoned
    // closures are *destroyed*, so their RAII guards still fire.
    ThreadPool pool(1);
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    pool.submit([&] {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
    });

    struct Guard
    {
        std::atomic<int> *fired;
        ~Guard() { ++*fired; }
    };
    std::atomic<int> fired{0};
    std::atomic<int> ran{0};
    for (int i = 0; i < 3; ++i) {
        auto guard = std::make_shared<Guard>();
        guard->fired = &fired;
        pool.submit([&ran, guard] { ++ran; });
    }

    ThreadPool::DrainResult dr = pool.drain(/*deadlineMs=*/50);
    EXPECT_FALSE(dr.completed);
    EXPECT_EQ(dr.abandoned, 3u);
    EXPECT_EQ(ran.load(), 0);
    EXPECT_EQ(fired.load(), 3); // destructors ran at abandonment

    // Intake is closed for good: later submits are rejected and
    // counted, and the rejected closure is destroyed too.
    {
        auto guard = std::make_shared<Guard>();
        guard->fired = &fired;
        EXPECT_FALSE(pool.submit([guard] {}));
    }
    EXPECT_EQ(pool.rejectedCount(), 1u);
    EXPECT_EQ(fired.load(), 4);

    // Unpark the worker so the destructor's join can finish.
    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    pool.wait();
}

TEST(RetryPolicy, ScheduleIsExactAndCapped)
{
    RetryPolicy p;
    p.attempts = 5;
    p.baseMs = 1.0;
    p.multiplier = 2.0;
    p.capMs = 6.0;
    // 1, 2, 4, then the cap, forever after.
    EXPECT_DOUBLE_EQ(p.delayMs(0), 1.0);
    EXPECT_DOUBLE_EQ(p.delayMs(1), 2.0);
    EXPECT_DOUBLE_EQ(p.delayMs(2), 4.0);
    EXPECT_DOUBLE_EQ(p.delayMs(3), 6.0);
    EXPECT_DOUBLE_EQ(p.delayMs(10), 6.0);

    // attempts counts the first try: 5 attempts = 4 retries (0..3).
    EXPECT_TRUE(p.shouldRetry(0));
    EXPECT_TRUE(p.shouldRetry(3));
    EXPECT_FALSE(p.shouldRetry(4));
    RetryPolicy once;
    once.attempts = 1;
    EXPECT_FALSE(once.shouldRetry(0));
}

TEST(RetryPolicy, BackoffUsesTheInjectedSleep)
{
    RetryPolicy p;
    p.attempts = 4;
    p.baseMs = 3.0;
    p.multiplier = 10.0;
    p.capMs = 50.0;
    std::vector<double> slept;
    p.sleep = [&](double ms) { slept.push_back(ms); };
    for (unsigned retry = 0; p.shouldRetry(retry); ++retry)
        p.backoff(retry);
    ASSERT_EQ(slept.size(), 3u);
    EXPECT_DOUBLE_EQ(slept[0], 3.0);
    EXPECT_DOUBLE_EQ(slept[1], 30.0);
    EXPECT_DOUBLE_EQ(slept[2], 50.0);
}

TEST(ThreadPoolParallelFor, ExceptionsAreCapturedNotPropagated)
{
    ThreadPool pool(2);
    std::atomic<int64_t> covered{0};
    pool.parallelFor(0, 10, 1, [&](int64_t lo, int64_t hi) {
        if (lo == 4)
            throw std::runtime_error("chunk failed");
        covered.fetch_add(hi - lo);
    });
    // The failing chunk is recorded; every other chunk still ran.
    EXPECT_EQ(pool.failureCount(), 1u);
    EXPECT_EQ(covered.load(), 9);
    auto fails = pool.takeFailures();
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_NE(fails[0].find("chunk failed"), std::string::npos);
    EXPECT_EQ(pool.failureCount(), 0u);
}

} // namespace
} // namespace polyfuse
