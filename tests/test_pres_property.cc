/**
 * @file
 * Property-based tests for the Presburger layer: randomly generated
 * small systems are checked against brute-force enumeration over a
 * bounded grid. Every operation's algebraic law (projection = image
 * of enumeration, intersection = pointwise and, subtraction =
 * pointwise difference, composition = relational join) is validated
 * on hundreds of cases via parameterized suites.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <string>

#include "codegen/cprinter.hh"
#include "driver/compile_context.hh"
#include "driver/pipeline.hh"
#include "driver/registry.hh"
#include "pres/affine.hh"
#include "pres/basic_map.hh"
#include "pres/map.hh"
#include "pres/set.hh"
#include "support/small_vec.hh"

namespace polyfuse {
namespace pres {
namespace {

constexpr int64_t kGrid = 4; // brute-force grid: [-kGrid, kGrid]

/** Deterministic small random constraint system generator. */
class RandomSystem
{
  public:
    explicit RandomSystem(unsigned seed) : rng_(seed) {}

    /** A random set over `dims` dims, intersected with the grid box. */
    BasicSet
    randomSet(const std::string &tuple, unsigned dims)
    {
        Space sp = Space::forSet(tuple, dims);
        BasicSet s(sp);
        addBox(s, sp);
        unsigned ncons = 1 + rng_() % 3;
        for (unsigned i = 0; i < ncons; ++i)
            s.addConstraint(randomConstraint(sp));
        return s;
    }

    Constraint
    randomConstraint(const Space &sp)
    {
        std::vector<int64_t> coeffs(sp.numCols(), 0);
        for (auto &c : coeffs)
            c = int64_t(rng_() % 5) - 2; // [-2, 2]
        coeffs.back() = int64_t(rng_() % 9) - 4;
        bool is_eq = (rng_() % 4) == 0;
        return Constraint(is_eq, coeffs);
    }

  private:
    void
    addBox(BasicSet &s, const Space &sp)
    {
        for (unsigned d = 0; d < sp.numOut(); ++d) {
            LinExpr x = LinExpr::setDim(sp, d);
            s.addConstraint(
                geCons(x, LinExpr::constant(sp, -kGrid)));
            s.addConstraint(leCons(x, LinExpr::constant(sp, kGrid)));
        }
    }

    std::mt19937 rng_;
};

/** All grid points of `dims` dims satisfying `s`. */
std::set<std::vector<int64_t>>
bruteForce(const BasicSet &s)
{
    std::set<std::vector<int64_t>> out;
    unsigned dims = s.space().numOut();
    std::vector<int64_t> pt(dims, -kGrid);
    while (true) {
        if (s.contains(pt, {}))
            out.insert(pt);
        unsigned d = 0;
        while (d < dims && ++pt[d] > kGrid) {
            pt[d] = -kGrid;
            ++d;
        }
        if (d == dims)
            break;
    }
    return out;
}

class PresProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PresProperty, EnumerateMatchesBruteForce)
{
    RandomSystem gen(GetParam());
    BasicSet s = gen.randomSet("S", 2);
    auto brute = bruteForce(s);
    auto pts = s.enumerate({});
    std::set<std::vector<int64_t>> enumerated(pts.begin(), pts.end());
    EXPECT_EQ(enumerated, brute) << s.str();
}

TEST_P(PresProperty, IsEmptyNeverClaimsEmptyWhenPointsExist)
{
    RandomSystem gen(GetParam() * 7919 + 13);
    BasicSet s = gen.randomSet("S", 2);
    auto brute = bruteForce(s);
    if (!brute.empty()) {
        EXPECT_FALSE(s.isEmpty()) << s.str();
    }
    // Converse (isEmpty implies no points) follows since the grid box
    // is part of the set: empty means no points anywhere.
    if (s.isEmpty()) {
        EXPECT_TRUE(brute.empty()) << s.str();
    }
}

TEST_P(PresProperty, IntersectionIsPointwiseAnd)
{
    RandomSystem gen(GetParam() * 104729 + 1);
    BasicSet a = gen.randomSet("S", 2);
    BasicSet b = gen.randomSet("S", 2);
    auto expect = bruteForce(a);
    auto bb = bruteForce(b);
    std::set<std::vector<int64_t>> inter;
    std::set_intersection(expect.begin(), expect.end(), bb.begin(),
                          bb.end(),
                          std::inserter(inter, inter.begin()));
    EXPECT_EQ(bruteForce(a.intersect(b)), inter);
}

TEST_P(PresProperty, ProjectionContainsShadowAndIsTightWhenExact)
{
    RandomSystem gen(GetParam() * 31 + 5);
    BasicSet s = gen.randomSet("S", 3);
    BasicSet p = s.projectOut(2, 1);
    // Shadow: projections of all points of s.
    std::set<std::vector<int64_t>> shadow;
    for (const auto &pt : s.enumerate({}))
        shadow.insert({pt[0], pt[1]});
    auto proj = p.enumerate({});
    std::set<std::vector<int64_t>> projected(proj.begin(), proj.end());
    // Soundness: projection over-approximates.
    for (const auto &pt : shadow)
        EXPECT_TRUE(projected.count(pt))
            << s.str() << " missing " << pt[0] << "," << pt[1];
    // Exactness: when the engine claims exact, sets match.
    if (p.wasExact()) {
        EXPECT_EQ(projected, shadow) << s.str();
    }
}

TEST_P(PresProperty, SubtractionIsPointwiseDifference)
{
    RandomSystem gen(GetParam() * 271 + 9);
    BasicSet a = gen.randomSet("S", 2);
    BasicSet b = gen.randomSet("S", 2);
    auto pa = bruteForce(a);
    auto pb = bruteForce(b);
    std::set<std::vector<int64_t>> expect;
    std::set_difference(pa.begin(), pa.end(), pb.begin(), pb.end(),
                        std::inserter(expect, expect.begin()));
    Set diff = Set(a).subtract(Set(b));
    auto got_v = diff.enumerateTuple("S", {});
    std::set<std::vector<int64_t>> got(got_v.begin(), got_v.end());
    EXPECT_EQ(got, expect) << a.str() << " minus " << b.str();
}

TEST_P(PresProperty, SubsetIsSoundInBothClaimDirections)
{
    // isSubset may be conservatively false when integer emptiness of
    // the difference cannot be proved (rational point survives), but
    // a true answer must be correct, and a brute-force "not subset"
    // must never be reported as subset.
    RandomSystem gen(GetParam() * 53 + 17);
    BasicSet a = gen.randomSet("S", 2);
    BasicSet b = gen.randomSet("S", 2);
    auto pa = bruteForce(a);
    auto pb = bruteForce(b);
    bool brute_subset = std::includes(pb.begin(), pb.end(), pa.begin(),
                                      pa.end());
    bool claimed = Set(a).isSubset(Set(b));
    if (claimed) {
        EXPECT_TRUE(brute_subset) << a.str() << " vs " << b.str();
    }
    if (!brute_subset) {
        EXPECT_FALSE(claimed) << a.str() << " vs " << b.str();
    }
}

TEST_P(PresProperty, ComposeIsRelationalJoin)
{
    RandomSystem gen(GetParam() * 997 + 3);
    // f: S -> B and g: B -> C as constrained relations over the grid.
    Space fsp = Space::forMap("S", 1, "B", 1);
    Space gsp = Space::forMap("B", 1, "C", 1);
    auto build = [&](const Space &sp) {
        BasicMap m(sp);
        for (unsigned d = 0; d < 2; ++d) {
            LinExpr x = d == 0 ? LinExpr::inDim(sp, 0)
                               : LinExpr::outDim(sp, 0);
            m.addConstraint(geCons(x, LinExpr::constant(sp, -kGrid)));
            m.addConstraint(leCons(x, LinExpr::constant(sp, kGrid)));
        }
        m.addConstraint(gen.randomConstraint(sp));
        m.addConstraint(gen.randomConstraint(sp));
        return m;
    };
    BasicMap f = build(fsp);
    BasicMap g = build(gsp);
    BasicMap fg = f.compose(g);

    auto pairsOf = [](const BasicMap &m) {
        std::set<std::pair<int64_t, int64_t>> out;
        for (int64_t i = -kGrid; i <= kGrid; ++i)
            for (int64_t j = -kGrid; j <= kGrid; ++j) {
                // Evaluate constraints directly via wrap().
                if (m.wrap().contains({i, j}, {}))
                    out.insert({i, j});
            }
        return out;
    };
    auto pf = pairsOf(f);
    auto pg = pairsOf(g);
    std::set<std::pair<int64_t, int64_t>> expect;
    for (auto [a, b] : pf)
        for (auto [b2, c] : pg)
            if (b == b2)
                expect.insert({a, c});
    auto got = pairsOf(fg);
    if (fg.wasExact()) {
        EXPECT_EQ(got, expect);
    } else {
        for (auto &p : expect)
            EXPECT_TRUE(got.count(p));
    }
}

TEST_P(PresProperty, ReverseIsInvolutive)
{
    RandomSystem gen(GetParam() * 11 + 29);
    Space sp = Space::forMap("S", 1, "B", 1);
    BasicMap m(sp);
    m.addConstraint(gen.randomConstraint(sp));
    m.addConstraint(gen.randomConstraint(sp));
    EXPECT_TRUE(m.reverse().reverse() == m);
}

TEST_P(PresProperty, DeltasMatchBruteForce)
{
    RandomSystem gen(GetParam() * 5 + 41);
    Space sp = Space::forMap("S", 1, "S", 1);
    BasicMap m(sp);
    for (unsigned d = 0; d < 2; ++d) {
        LinExpr x = d == 0 ? LinExpr::inDim(sp, 0)
                           : LinExpr::outDim(sp, 0);
        m.addConstraint(geCons(x, LinExpr::constant(sp, -kGrid)));
        m.addConstraint(leCons(x, LinExpr::constant(sp, kGrid)));
    }
    m.addConstraint(gen.randomConstraint(sp));
    std::set<int64_t> expect;
    for (int64_t i = -kGrid; i <= kGrid; ++i)
        for (int64_t j = -kGrid; j <= kGrid; ++j)
            if (m.wrap().contains({i, j}, {}))
                expect.insert(j - i);
    BasicSet d = m.deltas();
    std::set<int64_t> got;
    for (const auto &pt : d.enumerate({}))
        got.insert(pt[0]);
    if (d.wasExact()) {
        EXPECT_EQ(got, expect);
    } else {
        for (int64_t v : expect)
            EXPECT_TRUE(got.count(v));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresProperty,
                         ::testing::Range(0u, 60u));

/**
 * Cache-equivalence sweep over the whole workload registry: the op
 * cache and the SmallVec storage mode are pure performance knobs, so
 * every (cache on/off) x (rows inline/forced-heap) combination must
 * generate byte-identical C for every registry workload. Row storage
 * must not even change the FM counters; the cache legitimately
 * reduces FM work (hits skip recomputation), so across cache settings
 * only the code is compared, plus the invariant that cached runs
 * never do MORE FM work than uncached ones.
 */
class CacheEquivalence
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CacheEquivalence, EveryStorageAndCacheModeGeneratesSameCode)
{
    const driver::WorkloadSpec *w =
        driver::findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    ir::Program p = w->make(w->defaults);

    struct Variant
    {
        bool cache;
        bool inlineRows;
        std::string code;
        fm::Counters fm;
    };
    Variant variants[] = {{true, true, "", {}},
                          {true, false, "", {}},
                          {false, true, "", {}},
                          {false, false, "", {}}};
    for (Variant &v : variants) {
        std::unique_ptr<support::ScopedForceHeap> heap;
        if (!v.inlineRows)
            heap.reset(new support::ScopedForceHeap());
        driver::CompileContext ctx;
        ctx.setOpCacheEnabled(v.cache);
        driver::PipelineOptions opts;
        opts.strategy = driver::Strategy::Ours;
        opts.tileSizes = w->defaultTiles;
        driver::CompilationState state =
            driver::Pipeline(opts).run(p, ctx);
        v.code = codegen::printCode(p, state.ast);
        v.fm = ctx.fmCounters();
    }

    // Byte-identical generated C across all four variants.
    for (const Variant &v : variants)
        EXPECT_EQ(v.code, variants[0].code)
            << "cache=" << v.cache
            << " inlineRows=" << v.inlineRows;

    // Row storage never changes the work done: with the cache
    // setting held fixed, inline and forced-heap runs must agree on
    // every counter, cache fields included.
    for (int c = 0; c < 2; ++c) {
        const Variant &a = variants[c * 2];     // inline
        const Variant &b = variants[c * 2 + 1]; // forced heap
        EXPECT_EQ(a.fm.eliminations, b.fm.eliminations);
        EXPECT_EQ(a.fm.constraintsVisited, b.fm.constraintsVisited);
        EXPECT_EQ(a.fm.cacheHits, b.fm.cacheHits);
        EXPECT_EQ(a.fm.cacheMisses, b.fm.cacheMisses);
        EXPECT_EQ(a.fm.cacheEvictions, b.fm.cacheEvictions);
    }

    // Cache-off runs must not touch a cache at all, and cached runs
    // must never do more FM work than uncached ones.
    EXPECT_EQ(variants[2].fm.cacheHits, 0u);
    EXPECT_EQ(variants[2].fm.cacheMisses, 0u);
    EXPECT_LE(variants[0].fm.eliminations,
              variants[2].fm.eliminations);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CacheEquivalence,
    ::testing::Values("conv2d", "bilateral", "camera", "harris",
                      "laplacian", "interp", "unsharp", "equake",
                      "2mm", "gemver", "covariance", "convbn"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return "wl_" + std::string(info.param);
    });

} // namespace
} // namespace pres
} // namespace polyfuse
