/**
 * @file
 * Tests for BasicMap / Set / Map operations, culminating in the
 * paper's running example: deriving the footprint relation (eq. 4)
 * and the extension schedule (eq. 6) for the 2D convolution of
 * Fig. 1, and checking them against the concrete tile footprints the
 * paper lists in Sections III-A/III-B (H = W = 6, KH = KW = 3,
 * T2 = T3 = 2).
 */

#include <gtest/gtest.h>

#include "pres/affine.hh"
#include "pres/basic_map.hh"
#include "pres/map.hh"
#include "pres/set.hh"

namespace polyfuse {
namespace pres {
namespace {

TEST(BasicMap, IdentityAppliesAsIdentity)
{
    Space dom = Space::forSet("S", 2, {"N"});
    BasicMap id = BasicMap::identity(dom);
    BasicSet s(dom);
    LinExpr i = LinExpr::setDim(dom, 0), j = LinExpr::setDim(dom, 1);
    s.addConstraint(geCons(i, LinExpr::constant(dom, 0)));
    s.addConstraint(leCons(i, LinExpr::constant(dom, 3)));
    s.addConstraint(eqCons(j, LinExpr::constant(dom, 1)));
    BasicSet img = id.apply(s);
    EXPECT_EQ(img.enumerate({}).size(), 4u);
}

TEST(BasicMap, FromOutExprsBuildsShiftMap)
{
    // { S[i, j] -> A[i + 2, j + N] }.
    BasicMap m = BasicMap::fromOutExprs(
        "S", 2, "A",
        {{1, 0, 0, 2}, {0, 1, 1, 0}}, {"N"});
    BasicSet pt(Space::forSet("S", 2, {"N"}));
    pt = pt.fixDim(0, 5).fixDim(1, 7);
    BasicSet img = m.apply(pt);
    auto pts = img.enumerate({{"N", 10}});
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0], (std::vector<int64_t>{7, 17}));
}

TEST(BasicMap, ReverseSwapsTuples)
{
    BasicMap m = BasicMap::fromOutExprs("S", 1, "A", {{1, 3}}, {});
    BasicMap r = m.reverse();
    EXPECT_EQ(r.space().inTuple(), "A");
    EXPECT_EQ(r.space().outTuple(), "S");
    BasicSet a(Space::forSet("A", 1));
    a = a.fixDim(0, 10);
    auto pts = r.apply(a).enumerate({});
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0][0], 7);
}

TEST(BasicMap, ComposeChainsAffineFunctions)
{
    // f: S[i] -> B[2i], g: B[b] -> C[b + 1]; g o f : S[i] -> C[2i+1].
    BasicMap f = BasicMap::fromOutExprs("S", 1, "B", {{2, 0}}, {});
    BasicMap g = BasicMap::fromOutExprs("B", 1, "C", {{1, 1}}, {});
    BasicMap gf = f.compose(g);
    BasicSet s(Space::forSet("S", 1));
    s = s.fixDim(0, 4);
    auto pts = gf.apply(s).enumerate({});
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0][0], 9);
}

TEST(BasicMap, DomainAndRange)
{
    // { S[i] -> A[i + 1] : 0 <= i < 4 }.
    BasicMap m = BasicMap::fromOutExprs("S", 1, "A", {{1, 1}}, {});
    BasicSet dom(Space::forSet("S", 1));
    LinExpr i = LinExpr::setDim(dom.space(), 0);
    dom.addConstraint(geCons(i, LinExpr::constant(dom.space(), 0)));
    dom.addConstraint(ltCons(i, LinExpr::constant(dom.space(), 4)));
    BasicMap r = m.intersectDomain(dom);
    EXPECT_EQ(r.domain().enumerate({}).size(), 4u);
    auto range = r.range().enumerate({});
    ASSERT_EQ(range.size(), 4u);
    EXPECT_EQ(range.front()[0], 1);
    EXPECT_EQ(range.back()[0], 4);
}

TEST(BasicMap, DeltasOfShiftMap)
{
    // { S[i, j] -> S[i + 1, j - 2] }.
    BasicMap m = BasicMap::fromOutExprs("S", 2, "S",
                                        {{1, 0, 1}, {0, 1, -2}}, {});
    BasicSet d = m.deltas();
    auto pts = d.enumerate({});
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0], (std::vector<int64_t>{1, -2}));
}

TEST(BasicMap, DeltasOfStencilReadGivesKernelWindow)
{
    // { S[h, w, kh, kw] -> ... } style dep projected to (h, w) deltas:
    // consumer C[i] reads A[i + k], 0 <= k < 3: deltas of the
    // producer->consumer relation are -k, i.e. [-2, 0].
    Space sp = Space::forMap("P", 1, "C", 1, {});
    BasicMap m(sp);
    LinExpr p = LinExpr::inDim(sp, 0), c = LinExpr::outDim(sp, 0);
    // p == c + k, 0 <= k < 3  <=>  0 <= p - c < 3.
    m.addConstraint(geCons(p - c, LinExpr::constant(sp, 0)));
    m.addConstraint(ltCons(p - c, LinExpr::constant(sp, 3)));
    BasicSet d = m.renameTuples("S", "S").deltas();
    // Bounded only relatively; add a window to enumerate.
    BasicSet win(d.space());
    LinExpr dd = LinExpr::setDim(d.space(), 0);
    win.addConstraint(geCons(dd, LinExpr::constant(d.space(), -10)));
    win.addConstraint(leCons(dd, LinExpr::constant(d.space(), 10)));
    auto pts = d.intersect(win).enumerate({});
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_EQ(pts.front()[0], -2);
    EXPECT_EQ(pts.back()[0], 0);
}

TEST(BasicMap, OutDimBoundsGivesFootprintBox)
{
    // { T[o] -> A[a] : 2o <= a <= 2o + 4 }: box of dim 0 is
    // [2o, 2o + 4].
    Space sp = Space::forMap("T", 1, "A", 1, {});
    BasicMap m(sp);
    LinExpr o = LinExpr::inDim(sp, 0), a = LinExpr::outDim(sp, 0);
    m.addConstraint(geCons(a, o * 2));
    m.addConstraint(leCons(a, o * 2 + 4));
    std::vector<DivBound> lo, hi;
    ASSERT_TRUE(m.outDimBounds(0, lo, hi));
    ASSERT_EQ(lo.size(), 1u);
    ASSERT_EQ(hi.size(), 1u);
    EXPECT_EQ(lo[0].div, 1);
    EXPECT_EQ(lo[0].coeffs, (CoeffRow{2, 0}));
    EXPECT_EQ(hi[0].coeffs, (CoeffRow{2, 4}));
}

TEST(UnionSet, SubtractAndSubset)
{
    Space sp = Space::forSet("S", 1);
    LinExpr i = LinExpr::setDim(sp, 0);
    BasicSet big(sp);
    big.addConstraint(geCons(i, LinExpr::constant(sp, 0)));
    big.addConstraint(leCons(i, LinExpr::constant(sp, 9)));
    BasicSet small(sp);
    small.addConstraint(geCons(i, LinExpr::constant(sp, 3)));
    small.addConstraint(leCons(i, LinExpr::constant(sp, 5)));

    Set diff = Set(big).subtract(Set(small));
    auto pts = diff.enumerateTuple("S", {});
    EXPECT_EQ(pts.size(), 7u); // 0..2 and 6..9
    EXPECT_TRUE(Set(small).isSubset(Set(big)));
    EXPECT_FALSE(Set(big).isSubset(Set(small)));
    EXPECT_TRUE(Set(small).subtract(Set(big)).isEmpty());
}

TEST(UnionSet, TupleSeparation)
{
    BasicSet a(Space::forSet("A", 1));
    BasicSet b(Space::forSet("B", 1));
    Set u = Set(a).unite(Set(b));
    EXPECT_EQ(u.tupleNames().size(), 2u);
    EXPECT_EQ(u.extractTuple("A").pieces().size(), 1u);
    // Intersection across different tuples is empty.
    EXPECT_TRUE(Set(a).intersect(Set(b)).isEmpty());
}

TEST(UnionMap, ComposeMatchesByTuple)
{
    BasicMap f1 = BasicMap::fromOutExprs("S0", 1, "A", {{1, 0}}, {});
    BasicMap f2 = BasicMap::fromOutExprs("S1", 1, "B", {{1, 0}}, {});
    BasicMap g = BasicMap::fromOutExprs("A", 1, "C", {{1, 5}}, {});
    Map u = Map(f1).unite(Map(f2));
    Map comp = u.compose(Map(g));
    // Only the S0 -> A piece composes with A -> C.
    ASSERT_EQ(comp.pieces().size(), 1u);
    EXPECT_EQ(comp.pieces()[0].space().inTuple(), "S0");
    EXPECT_EQ(comp.pieces()[0].space().outTuple(), "C");
}

/**
 * The paper's running example, end to end on the set layer.
 *
 * Reduction space tile map (eq. 2): S2(h,w,kh,kw) -> (o0, o1) with
 * T2*o0 <= h < T2*(o0+1), T3*o1 <= w < T3*(o1+1), domain constraints
 * 0 <= h <= H-KH, 0 <= w <= W-KW, 0 <= kh < KH, 0 <= kw < KW.
 *
 * Read access (eq. 3): S2(h,w,kh,kw) -> A(h+kh, w+kw).
 *
 * Footprint (eq. 4) = reverse(tile map) composed with access.
 * Extension schedule (eq. 6) = footprint composed with reverse of
 * S0's write access A(h,w) -> S0(h,w) restricted to S0's domain.
 */
class ConvExample : public ::testing::Test
{
  protected:
    static constexpr int64_t H = 6, W = 6, KH = 3, KW = 3;
    static constexpr int64_t T2 = 2, T3 = 2;

    BasicMap tileMap;  ///< S2 -> T (eq. 2 with domain constraints)
    BasicMap readA;    ///< S2 -> A (eq. 3)
    BasicMap writeRev; ///< A -> S0 (eq. 5)
    BasicMap footprint; ///< T -> A (eq. 4)
    BasicMap extension; ///< T -> S0 (eq. 6)

    void
    SetUp() override
    {
        // S2 domain + tiling constraints; tile sizes fixed to 2.
        Space ts = Space::forMap("S2", 4, "T", 2, {});
        BasicMap tm(ts);
        LinExpr h = LinExpr::inDim(ts, 0), w = LinExpr::inDim(ts, 1);
        LinExpr kh = LinExpr::inDim(ts, 2), kw = LinExpr::inDim(ts, 3);
        LinExpr o0 = LinExpr::outDim(ts, 0), o1 = LinExpr::outDim(ts, 1);
        LinExpr zero = LinExpr::constant(ts, 0);
        tm.addConstraint(geCons(h, zero));
        tm.addConstraint(leCons(h, LinExpr::constant(ts, H - KH)));
        tm.addConstraint(geCons(w, zero));
        tm.addConstraint(leCons(w, LinExpr::constant(ts, W - KW)));
        tm.addConstraint(geCons(kh, zero));
        tm.addConstraint(ltCons(kh, LinExpr::constant(ts, KH)));
        tm.addConstraint(geCons(kw, zero));
        tm.addConstraint(ltCons(kw, LinExpr::constant(ts, KW)));
        tm.addConstraint(leCons(o0 * T2, h));
        tm.addConstraint(ltCons(h, o0 * T2 + T2));
        tm.addConstraint(leCons(o1 * T3, w));
        tm.addConstraint(ltCons(w, o1 * T3 + T3));
        tileMap = tm;

        // S2 -> A access.
        Space as = Space::forMap("S2", 4, "A", 2, {});
        BasicMap am(as);
        LinExpr ah = LinExpr::inDim(as, 0), aw = LinExpr::inDim(as, 1);
        LinExpr akh = LinExpr::inDim(as, 2), akw = LinExpr::inDim(as, 3);
        LinExpr x = LinExpr::outDim(as, 0), y = LinExpr::outDim(as, 1);
        am.addConstraint(eqCons(x, ah + akh));
        am.addConstraint(eqCons(y, aw + akw));
        readA = am;

        // A -> S0 (reverse write; S0 writes A[h][w] over its domain).
        Space ws = Space::forMap("A", 2, "S0", 2, {});
        BasicMap wm(ws);
        LinExpr wa0 = LinExpr::inDim(ws, 0), wa1 = LinExpr::inDim(ws, 1);
        LinExpr s0 = LinExpr::outDim(ws, 0), s1 = LinExpr::outDim(ws, 1);
        wm.addConstraint(eqCons(s0, wa0));
        wm.addConstraint(eqCons(s1, wa1));
        wm.addConstraint(geCons(s0, LinExpr::constant(ws, 0)));
        wm.addConstraint(ltCons(s0, LinExpr::constant(ws, H)));
        wm.addConstraint(geCons(s1, LinExpr::constant(ws, 0)));
        wm.addConstraint(ltCons(s1, LinExpr::constant(ws, W)));
        writeRev = wm;

        footprint = tileMap.reverse().compose(readA);
        extension = footprint.compose(writeRev);
    }
};

TEST_F(ConvExample, FootprintOfBlueTileMatchesPaper)
{
    // Blue tile (o0, o1) = (1, 0): footprint {A : 2<=h'<=5, 0<=w'<=3}.
    BasicMap fixed = footprint.fixInDim(0, 1).fixInDim(1, 0);
    auto pts = fixed.range().enumerate({});
    EXPECT_EQ(pts.size(), 16u);
    for (const auto &p : pts) {
        EXPECT_GE(p[0], 2);
        EXPECT_LE(p[0], 5);
        EXPECT_GE(p[1], 0);
        EXPECT_LE(p[1], 3);
    }
}

TEST_F(ConvExample, FootprintOfRedTileMatchesPaper)
{
    // Red tile (1, 1): footprint {A : 2<=h'<=5, 2<=w'<=5}.
    BasicMap fixed = footprint.fixInDim(0, 1).fixInDim(1, 1);
    auto pts = fixed.range().enumerate({});
    EXPECT_EQ(pts.size(), 16u);
    for (const auto &p : pts) {
        EXPECT_GE(p[0], 2);
        EXPECT_LE(p[0], 5);
        EXPECT_GE(p[1], 2);
        EXPECT_LE(p[1], 5);
    }
}

TEST_F(ConvExample, FootprintsOfAdjacentTilesOverlap)
{
    BasicSet blue = footprint.fixInDim(0, 1).fixInDim(1, 0).range();
    BasicSet red = footprint.fixInDim(0, 1).fixInDim(1, 1).range();
    BasicSet both = blue.intersect(red);
    // Interleaved region: 2<=h'<=5, 2<=w'<=3 -> 8 points.
    EXPECT_EQ(both.enumerate({}).size(), 8u);
}

TEST_F(ConvExample, ExtensionScheduleMatchesPaper)
{
    // Blue tile instances of S0: {S0(h,w) : 2<=h<=5, 0<=w<=3}.
    BasicMap fixed = extension.fixInDim(0, 1).fixInDim(1, 0);
    auto pts = fixed.range().enumerate({});
    EXPECT_EQ(pts.size(), 16u);
    for (const auto &p : pts) {
        EXPECT_GE(p[0], 2);
        EXPECT_LE(p[0], 5);
        EXPECT_GE(p[1], 0);
        EXPECT_LE(p[1], 3);
    }
}

TEST_F(ConvExample, ExtensionRangeCoversWholeUsedRegion)
{
    // Union over all tiles covers exactly the region of A read by S2:
    // every A point (conv reads the full 6x6 input when H=W=6, KH=3).
    Set used;
    for (int64_t o0 = 0; o0 < 2; ++o0)
        for (int64_t o1 = 0; o1 < 2; ++o1)
            used = used.unite(
                Set(extension.fixInDim(0, o0).fixInDim(1, o1).range()));
    auto pts = used.enumerateTuple("S0", {});
    EXPECT_EQ(pts.size(), 36u);
}

TEST_F(ConvExample, FootprintIsExact)
{
    EXPECT_TRUE(footprint.wasExact());
    EXPECT_TRUE(extension.wasExact());
}

} // namespace
} // namespace pres
} // namespace polyfuse
