/**
 * @file
 * Tests for the compilation driver: the pass pipeline must produce
 * exactly the same AST as the pre-driver direct-call path
 * (applyFusion/tileAllBands or core::compose followed by
 * generateAst), and the per-pass instrumentation must record every
 * pass exactly once with sane timings.
 */

#include <gtest/gtest.h>

#include "codegen/cprinter.hh"
#include "core/compose.hh"
#include "driver/pipeline.hh"
#include "schedule/fusion.hh"
#include "workloads/conv2d.hh"
#include "workloads/pipelines.hh"

namespace polyfuse {
namespace driver {
namespace {

/** The two workloads the identity test runs over. */
std::vector<std::pair<std::string, ir::Program>>
testPrograms()
{
    std::vector<std::pair<std::string, ir::Program>> out;
    out.emplace_back("conv2d", workloads::makeConv2D({16, 16, 3, 3}));
    workloads::PipelineConfig cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    out.emplace_back("harris", workloads::makeHarris(cfg));
    return out;
}

/** Pre-driver reference: heuristic fusion + rectangular tiling. */
std::string
referenceHeuristic(const ir::Program &p, schedule::FusionPolicy policy,
                   const std::vector<int64_t> &tiles)
{
    auto g = deps::DependenceGraph::compute(p);
    auto fusion = schedule::applyFusion(p, g, policy);
    tileAllBands(fusion.tree, tiles);
    return codegen::printCode(p, codegen::generateAst(fusion.tree));
}

/** Pre-driver reference: the post-tiling composition. */
std::string
referenceCompose(const ir::Program &p,
                 const std::vector<int64_t> &tiles)
{
    auto g = deps::DependenceGraph::compute(p);
    core::ComposeOptions opts;
    opts.tileSizes = tiles;
    auto r = core::compose(p, g, opts);
    return codegen::printCode(p, codegen::generateAst(r.tree));
}

/** Driver path for the same options. */
std::string
viaDriver(const ir::Program &p, Strategy strategy,
          const std::vector<int64_t> &tiles)
{
    PipelineOptions opts;
    opts.strategy = strategy;
    opts.tileSizes = tiles;
    auto state = Pipeline(opts).run(p);
    return codegen::printCode(p, state.ast);
}

TEST(DriverIdentity, MinFuseMatchesDirectPath)
{
    const std::vector<int64_t> tiles = {8, 8};
    for (const auto &[name, p] : testPrograms()) {
        SCOPED_TRACE(name);
        EXPECT_EQ(viaDriver(p, Strategy::MinFuse, tiles),
                  referenceHeuristic(
                      p, schedule::FusionPolicy::Min, tiles));
    }
}

TEST(DriverIdentity, OursMatchesDirectPath)
{
    const std::vector<int64_t> tiles = {8, 8};
    for (const auto &[name, p] : testPrograms()) {
        SCOPED_TRACE(name);
        EXPECT_EQ(viaDriver(p, Strategy::Ours, tiles),
                  referenceCompose(p, tiles));
    }
}

TEST(DriverStats, EveryPassRecordedOnceInOrder)
{
    for (auto strategy : allStrategies()) {
        SCOPED_TRACE(strategyName(strategy));
        PipelineOptions opts;
        opts.strategy = strategy;
        opts.tileSizes = {8, 8};
        auto state = Pipeline(opts).run(
            workloads::makeConv2D({16, 16, 3, 3}));

        const auto &passes = state.stats.passes();
        const auto names = Pipeline::passNames();
        ASSERT_EQ(passes.size(), names.size());
        double prev_end = 0;
        for (size_t i = 0; i < passes.size(); ++i) {
            EXPECT_EQ(passes[i].name, names[i]);
            EXPECT_GE(passes[i].ms, 0.0);
            EXPECT_GE(passes[i].endMs, prev_end);
            prev_end = passes[i].endMs;
        }
        // Exactly once: no duplicate names.
        for (const auto &name : names)
            EXPECT_EQ(std::count_if(passes.begin(), passes.end(),
                                    [&](const PassStat &s) {
                                        return s.name == name;
                                    }),
                      1);
        EXPECT_GE(state.compileMs(), 0.0);
        EXPECT_LE(state.compileMs(), state.stats.totalMs());
    }
}

TEST(DriverStats, ComposeCountersSurfaceInReport)
{
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    opts.tileSizes = {4, 4};
    auto state =
        Pipeline(opts).run(workloads::makeConv2D({16, 16, 3, 3}));
    const auto *compose = state.stats.find("Compose");
    ASSERT_NE(compose, nullptr);
    EXPECT_GT(compose->counter("extensions", 0), 0);
    std::string report = state.stats.str();
    EXPECT_NE(report.find("Compose"), std::string::npos);
    EXPECT_NE(report.find("extensions"), std::string::npos);
    std::string json = state.stats.json();
    EXPECT_NE(json.find("\"passes\""), std::string::npos);
    EXPECT_NE(json.find("\"Codegen\""), std::string::npos);
}

TEST(DriverStrategy, NamesRoundTripThroughParser)
{
    for (auto strategy : allStrategies()) {
        Strategy parsed{};
        ASSERT_TRUE(parseStrategy(strategyName(strategy), parsed))
            << strategyName(strategy);
        EXPECT_EQ(parsed, strategy);
    }
    Strategy ignored{};
    EXPECT_FALSE(parseStrategy("?", ignored));
    EXPECT_FALSE(parseStrategy("", ignored));
}

} // namespace
} // namespace driver
} // namespace polyfuse
