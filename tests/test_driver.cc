/**
 * @file
 * Tests for the compilation driver: the pass pipeline must produce
 * exactly the same AST as the pre-driver direct-call path
 * (applyFusion/tileAllBands or core::compose followed by
 * generateAst), and the per-pass instrumentation must record every
 * pass exactly once with sane timings.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>

#include "codegen/cprinter.hh"
#include "core/compose.hh"
#include "driver/pipeline.hh"
#include "schedule/fusion.hh"
#include "workloads/conv2d.hh"
#include "workloads/pipelines.hh"

namespace polyfuse {
namespace driver {
namespace {

/** The two workloads the identity test runs over. */
std::vector<std::pair<std::string, ir::Program>>
testPrograms()
{
    std::vector<std::pair<std::string, ir::Program>> out;
    out.emplace_back("conv2d", workloads::makeConv2D({16, 16, 3, 3}));
    workloads::PipelineConfig cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    out.emplace_back("harris", workloads::makeHarris(cfg));
    return out;
}

/** Pre-driver reference: heuristic fusion + rectangular tiling. */
std::string
referenceHeuristic(const ir::Program &p, schedule::FusionPolicy policy,
                   const std::vector<int64_t> &tiles)
{
    auto g = deps::DependenceGraph::compute(p);
    auto fusion = schedule::applyFusion(p, g, policy);
    tileAllBands(fusion.tree, tiles);
    return codegen::printCode(p, codegen::generateAst(fusion.tree));
}

/** Pre-driver reference: the post-tiling composition. */
std::string
referenceCompose(const ir::Program &p,
                 const std::vector<int64_t> &tiles)
{
    auto g = deps::DependenceGraph::compute(p);
    core::ComposeOptions opts;
    opts.tileSizes = tiles;
    auto r = core::compose(p, g, opts);
    return codegen::printCode(p, codegen::generateAst(r.tree));
}

/** Driver path for the same options. */
std::string
viaDriver(const ir::Program &p, Strategy strategy,
          const std::vector<int64_t> &tiles)
{
    PipelineOptions opts;
    opts.strategy = strategy;
    opts.tileSizes = tiles;
    auto state = Pipeline(opts).run(p);
    return codegen::printCode(p, state.ast);
}

TEST(DriverIdentity, MinFuseMatchesDirectPath)
{
    const std::vector<int64_t> tiles = {8, 8};
    for (const auto &[name, p] : testPrograms()) {
        SCOPED_TRACE(name);
        EXPECT_EQ(viaDriver(p, Strategy::MinFuse, tiles),
                  referenceHeuristic(
                      p, schedule::FusionPolicy::Min, tiles));
    }
}

TEST(DriverIdentity, OursMatchesDirectPath)
{
    const std::vector<int64_t> tiles = {8, 8};
    for (const auto &[name, p] : testPrograms()) {
        SCOPED_TRACE(name);
        EXPECT_EQ(viaDriver(p, Strategy::Ours, tiles),
                  referenceCompose(p, tiles));
    }
}

TEST(DriverStats, EveryPassRecordedOnceInOrder)
{
    for (auto strategy : allStrategies()) {
        SCOPED_TRACE(strategyName(strategy));
        PipelineOptions opts;
        opts.strategy = strategy;
        opts.tileSizes = {8, 8};
        auto state = Pipeline(opts).run(
            workloads::makeConv2D({16, 16, 3, 3}));

        const auto &passes = state.stats.passes();
        const auto names = Pipeline::passNames();
        ASSERT_EQ(passes.size(), names.size());
        double prev_end = 0;
        for (size_t i = 0; i < passes.size(); ++i) {
            EXPECT_EQ(passes[i].name, names[i]);
            EXPECT_GE(passes[i].ms, 0.0);
            EXPECT_GE(passes[i].endMs, prev_end);
            prev_end = passes[i].endMs;
        }
        // Exactly once: no duplicate names.
        for (const auto &name : names)
            EXPECT_EQ(std::count_if(passes.begin(), passes.end(),
                                    [&](const PassStat &s) {
                                        return s.name == name;
                                    }),
                      1);
        EXPECT_GE(state.compileMs(), 0.0);
        EXPECT_LE(state.compileMs(), state.stats.totalMs());
    }
}

TEST(DriverStats, ComposeCountersSurfaceInReport)
{
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    opts.tileSizes = {4, 4};
    auto state =
        Pipeline(opts).run(workloads::makeConv2D({16, 16, 3, 3}));
    const auto *compose = state.stats.find("Compose");
    ASSERT_NE(compose, nullptr);
    EXPECT_GT(compose->counter("extensions", 0), 0);
    std::string report = state.stats.str();
    EXPECT_NE(report.find("Compose"), std::string::npos);
    EXPECT_NE(report.find("extensions"), std::string::npos);
    std::string json = state.stats.json();
    EXPECT_NE(json.find("\"passes\""), std::string::npos);
    EXPECT_NE(json.find("\"Codegen\""), std::string::npos);
}

// --- Minimal JSON reader for the PassStats round-trip test --------
// Parses exactly the subset PassStats::json() emits (objects, arrays,
// strings with escapes, numbers) back into a PassStats, so
// serialize -> parse -> serialize must reproduce the bytes.

struct JsonReader
{
    const std::string &s;
    size_t pos = 0;

    explicit JsonReader(const std::string &text) : s(text) {}

    void ws()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t'))
            ++pos;
    }
    bool eat(char c)
    {
        ws();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }
    void expect(char c)
    {
        ASSERT_TRUE(eat(c)) << "expected '" << c << "' at " << pos
                            << " in " << s.substr(pos, 40);
    }
    std::string string()
    {
        ws();
        EXPECT_EQ(s[pos], '"');
        ++pos;
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                out += char(std::stoi(s.substr(pos, 4), nullptr, 16));
                pos += 4;
                break;
              }
              default: ADD_FAILURE() << "bad escape " << e;
            }
        }
        ++pos; // closing quote
        return out;
    }
    double number()
    {
        ws();
        size_t end = pos;
        while (end < s.size() &&
               (std::isdigit((unsigned char)s[end]) ||
                s[end] == '-' || s[end] == '.' || s[end] == 'e'))
            ++end;
        double v = std::stod(s.substr(pos, end - pos));
        pos = end;
        return v;
    }
};

/** Parse PassStats::json() text back into a PassStats. */
PassStats
parsePassStats(const std::string &text)
{
    PassStats out;
    JsonReader r(text);
    r.expect('{');
    EXPECT_EQ(r.string(), "passes");
    r.expect(':');
    r.expect('[');
    if (!r.eat(']')) {
        do {
            PassStat ps;
            r.expect('{');
            EXPECT_EQ(r.string(), "name");
            r.expect(':');
            ps.name = r.string();
            r.expect(',');
            EXPECT_EQ(r.string(), "ms");
            r.expect(':');
            ps.ms = r.number();
            r.expect(',');
            EXPECT_EQ(r.string(), "counters");
            r.expect(':');
            r.expect('{');
            if (!r.eat('}')) {
                do {
                    std::string key = r.string();
                    r.expect(':');
                    ps.counters.emplace_back(
                        key, int64_t(r.number()));
                } while (r.eat(','));
                r.expect('}');
            }
            r.expect('}');
            out.add(std::move(ps));
        } while (r.eat(','));
        r.expect(']');
    }
    // totalMs is derived; just require the key to be present.
    r.expect(',');
    EXPECT_EQ(r.string(), "totalMs");
    return out;
}

TEST(DriverStats, JsonRoundTripsAndEscapes)
{
    PassStats stats;
    PassStat a;
    a.name = "Pass \"quoted\"\\back\nnewline\ttab\x01"
             "ctl";
    a.ms = 1.5;
    // Reported out of key order on purpose: json() must sort.
    a.counters.emplace_back("zeta", 7);
    a.counters.emplace_back("alpha", -3);
    a.counters.emplace_back("mid\"key", 42);
    stats.add(a);
    PassStat b;
    b.name = "Empty";
    b.ms = 0.25;
    stats.add(b);

    std::string json = stats.json();
    // Escaping: raw specials never appear unescaped.
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\\\\back"), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_NE(json.find("\\t"), std::string::npos);
    EXPECT_NE(json.find("\\u0001"), std::string::npos);
    EXPECT_EQ(json.find('\n'), std::string::npos);
    // Deterministic key order: sorted, independent of insertion.
    EXPECT_LT(json.find("\"alpha\""), json.find("\"mid\\\"key\""));
    EXPECT_LT(json.find("\"mid\\\"key\""), json.find("\"zeta\""));

    // Round trip: parse back and re-serialize to identical bytes,
    // and the parsed struct preserves names and values.
    PassStats parsed = parsePassStats(json);
    EXPECT_EQ(parsed.json(), json);
    ASSERT_EQ(parsed.passes().size(), 2u);
    EXPECT_EQ(parsed.passes()[0].name, a.name);
    EXPECT_EQ(parsed.passes()[0].counter("alpha"), -3);
    EXPECT_EQ(parsed.passes()[0].counter("mid\"key"), 42);
    EXPECT_EQ(parsed.passes()[0].counter("zeta"), 7);
    EXPECT_DOUBLE_EQ(parsed.passes()[1].ms, 0.25);

    // A real pipeline report round-trips too. totalMs is derived
    // (sum of the full-precision pass times, not of their 4-decimal
    // prints), so it is normalized out of the comparison.
    auto dropTotal = [](const std::string &j) {
        return j.substr(0, j.rfind("\"totalMs\""));
    };
    PipelineOptions opts;
    opts.strategy = Strategy::Ours;
    opts.tileSizes = {8, 8};
    auto state =
        Pipeline(opts).run(workloads::makeConv2D({16, 16, 3, 3}));
    std::string real = state.stats.json();
    EXPECT_EQ(dropTotal(parsePassStats(real).json()),
              dropTotal(real));
}

TEST(DriverStrategy, NamesRoundTripThroughParser)
{
    for (auto strategy : allStrategies()) {
        Strategy parsed{};
        ASSERT_TRUE(parseStrategy(strategyName(strategy), parsed))
            << strategyName(strategy);
        EXPECT_EQ(parsed, strategy);
    }
    Strategy ignored{};
    EXPECT_FALSE(parseStrategy("?", ignored));
    EXPECT_FALSE(parseStrategy("", ignored));
}

} // namespace
} // namespace driver
} // namespace polyfuse
