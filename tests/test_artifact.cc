/**
 * @file
 * Tests for the kernel-artifact layer (ISSUE 7): whole-program
 * fingerprint semantics, the process-wide kernel cache, the
 * fingerprint-keyed tuning store, and the shared LRU policy of the
 * Presburger op cache.
 *
 * The heart of the file is the registry-wide differential sweep:
 * for every registered workload and a spread of strategies, the
 * cache-off, cache-cold and cache-warm compiles must execute to
 * bit-identical buffers with identical ExecStats -- a cached kernel
 * is indistinguishable from a fresh one in everything but compile
 * time.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/artifact.hh"
#include "driver/registry.hh"
#include "exec/kernel_cache.hh"
#include "perfmodel/autotune.hh"
#include "perfmodel/tune_db.hh"
#include "pres/op_cache.hh"
#include "pres/parser.hh"
#include "workloads/conv2d.hh"
#include "workloads/equake.hh"

namespace polyfuse {
namespace driver {
namespace {

std::shared_ptr<const ir::Program>
smallConv()
{
    return std::make_shared<const ir::Program>(
        workloads::makeConv2D({16, 16, 3, 3}));
}

/** Small sizes so the whole registry compiles and runs quickly. */
WorkloadParams
smallParams(const WorkloadSpec &spec)
{
    WorkloadParams p = spec.defaults;
    p.rows = std::min<int64_t>(p.rows, 48);
    p.cols = std::min<int64_t>(p.cols, 48);
    return p;
}

void
fillInputs(const ir::Program &program, exec::Buffers &buffers)
{
    if (program.name() == "equake") {
        workloads::initEquakeInputs(program, buffers, 11);
        return;
    }
    for (size_t t = 0; t < program.tensors().size(); ++t)
        if (program.tensor(t).kind != ir::TensorKind::Temp)
            buffers.fillPattern(t, 1000 + t);
}

/** ExecStats equality, wall-clock excluded. */
void
expectSameStats(const exec::ExecStats &a, const exec::ExecStats &b)
{
    EXPECT_EQ(a.instances, b.instances);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.guardFails, b.guardFails);
    EXPECT_EQ(a.flops, b.flops);
}

/** Bit-identical buffer contents (exact double equality). */
void
expectSameBuffers(const exec::Buffers &a, const exec::Buffers &b)
{
    ASSERT_EQ(a.numTensors(), b.numTensors());
    for (size_t t = 0; t < a.numTensors(); ++t) {
        const auto &da = a.data(int(t));
        const auto &db = b.data(int(t));
        ASSERT_EQ(da.size(), db.size()) << "tensor " << t;
        for (size_t i = 0; i < da.size(); ++i)
            ASSERT_EQ(da[i], db[i])
                << "tensor " << t << " element " << i;
    }
}

TEST(ProgramFingerprint, StableAcrossContextsThreadsAndRuns)
{
    PipelineOptions opts;
    auto fp0 = programFingerprint(*smallConv(), opts,
                                  exec::Tier::Bytecode);
    // Re-built program, repeated runs: identical.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(programFingerprint(*smallConv(), opts,
                                     exec::Tier::Bytecode),
                  fp0);
    // Other threads (each with its own thread-local pres state).
    std::vector<pres::Fingerprint> got(4);
    std::vector<std::thread> threads;
    for (size_t i = 0; i < got.size(); ++i)
        threads.emplace_back([&, i] {
            got[i] = programFingerprint(*smallConv(), opts,
                                        exec::Tier::Bytecode);
        });
    for (auto &t : threads)
        t.join();
    for (const auto &fp : got)
        EXPECT_EQ(fp, fp0);
    // The hex spelling round-trips through the parser.
    pres::Fingerprint parsed;
    ASSERT_TRUE(pres::parseFingerprint(fp0.hex(), &parsed));
    EXPECT_EQ(parsed, fp0);
}

TEST(ProgramFingerprint, DistinguishesEverythingThatChangesCode)
{
    auto program = smallConv();
    PipelineOptions base;
    auto fp = [&](const PipelineOptions &o, exec::Tier tier) {
        return programFingerprint(*program, o, tier);
    };
    auto base_fp = fp(base, exec::Tier::Bytecode);

    PipelineOptions tiles = base;
    tiles.tileSizes = {16, 16};
    EXPECT_NE(fp(tiles, exec::Tier::Bytecode), base_fp);

    PipelineOptions inner = base;
    inner.innerTileSizes = {8, 8};
    EXPECT_NE(fp(inner, exec::Tier::Bytecode), base_fp);

    PipelineOptions strat = base;
    strat.strategy = Strategy::PolyMage;
    EXPECT_NE(fp(strat, exec::Tier::Bytecode), base_fp);

    PipelineOptions par = base;
    par.targetParallelism = 2;
    EXPECT_NE(fp(par, exec::Tier::Bytecode), base_fp);

    PipelineOptions gen = base;
    gen.gen.promoteIntermediates = false;
    EXPECT_NE(fp(gen, exec::Tier::Bytecode), base_fp);

    PipelineOptions dil = base;
    dil.footprintDilation = 1;
    EXPECT_NE(fp(dil, exec::Tier::Bytecode), base_fp);

    EXPECT_NE(fp(base, exec::Tier::Native), base_fp);
    EXPECT_NE(fp(base, exec::Tier::Interp), base_fp);

    // A different program is a different key.
    auto other = std::make_shared<const ir::Program>(
        workloads::makeConv2D({24, 16, 3, 3}));
    EXPECT_NE(programFingerprint(*other, base, exec::Tier::Bytecode),
              base_fp);

    // budgetFallback is a policy, not a codegen input: same key.
    PipelineOptions fb = base;
    fb.budgetFallback = false;
    EXPECT_EQ(fp(fb, exec::Tier::Bytecode), base_fp);
}

TEST(ProgramFingerprint, BackendParametersKeyTheNativeTier)
{
    auto program = smallConv();
    PipelineOptions base;
    auto fp = [&](exec::Tier tier, exec::ParStrategy par,
                  unsigned threads, exec::SimdMode simd) {
        return programFingerprint(*program, base, tier, par,
                                  threads, simd);
    };

    // The tile-team shape is baked into a parallel native TU:
    // strategy-on/off and team size must each change the key.
    auto native_seq = fp(exec::Tier::Native, exec::ParStrategy::Off,
                         0, exec::SimdMode::Off);
    auto native_p2 = fp(exec::Tier::Native,
                        exec::ParStrategy::Static, 2,
                        exec::SimdMode::Off);
    auto native_p4 = fp(exec::Tier::Native,
                        exec::ParStrategy::Static, 4,
                        exec::SimdMode::Off);
    EXPECT_NE(native_p2, native_seq);
    EXPECT_NE(native_p4, native_seq);
    EXPECT_NE(native_p4, native_p2);

    // The bytecode VM's knobs change no emitted code: par and simd
    // leave the bytecode key alone, and simd leaves every key
    // alone (it is a pure runtime flag).
    auto byte_seq = fp(exec::Tier::Bytecode, exec::ParStrategy::Off,
                       0, exec::SimdMode::Off);
    EXPECT_EQ(fp(exec::Tier::Bytecode, exec::ParStrategy::Static, 4,
                 exec::SimdMode::Off),
              byte_seq);
    EXPECT_EQ(fp(exec::Tier::Bytecode, exec::ParStrategy::Off, 0,
                 exec::SimdMode::On),
              byte_seq);
    EXPECT_EQ(fp(exec::Tier::Native, exec::ParStrategy::Static, 2,
                 exec::SimdMode::On),
              native_p2);
}

TEST(KernelCache, BackendFlipNeverServesTheWrongKernel)
{
    // Regression (ISSUE 9): flipping the backend between two cache
    // lookups of the same program must miss, not serve a kernel
    // compiled for a different team shape.
    exec::KernelCache cache;
    auto program = smallConv();
    Pipeline pipeline{PipelineOptions{}};

    ArtifactOptions seq;
    seq.cache = &cache;
    seq.tier = exec::Tier::Native;
    auto a = compileKernel(pipeline, program, seq);
    a = compileKernel(pipeline, program, seq); // self-warm
    ASSERT_TRUE(a.ok());

    ArtifactOptions par = seq;
    par.par = exec::ParStrategy::Static;
    par.parThreads = 2;
    auto b = compileKernel(pipeline, program, par);
    ASSERT_TRUE(b.ok());
    EXPECT_NE(b.fingerprint, a.fingerprint);
    EXPECT_FALSE(b.fromCache);

    // Same backend again: now it may (and does) hit.
    auto c = compileKernel(pipeline, program, par);
    ASSERT_TRUE(c.ok());
    EXPECT_TRUE(c.fromCache);
    EXPECT_EQ(c.fingerprint, b.fingerprint);
}

TEST(KernelCache, WarmCompileSkipsThePipelineEntirely)
{
    exec::KernelCache cache;
    auto program = smallConv();
    Pipeline pipeline{PipelineOptions{}};
    ArtifactOptions aopts;
    aopts.cache = &cache;

    CompileContext cold_ctx;
    auto cold = compileKernel(pipeline, program, cold_ctx, aopts);
    ASSERT_TRUE(cold.ok());
    EXPECT_FALSE(cold.fromCache);
    EXPECT_NE(cold.stats.find("Codegen"), nullptr);
    EXPECT_GT(cold_ctx.fmCounters().eliminations, 0u);

    CompileContext warm_ctx;
    auto warm = compileKernel(pipeline, program, warm_ctx, aopts);
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(warm.fingerprint, cold.fingerprint);
    // The hit shares the image the miss inserted.
    EXPECT_EQ(warm.image.get(), cold.image.get());
    // The stats record the lookup and nothing else: no Presburger
    // pass ran, no FM work was charged to the warm context.
    ASSERT_EQ(warm.stats.passes().size(), 1u);
    EXPECT_EQ(warm.stats.passes()[0].name, "KernelCache");
    EXPECT_EQ(warm_ctx.fmCounters().eliminations, 0u);
    EXPECT_EQ(warm_ctx.fmCounters().constraintsVisited, 0u);
    EXPECT_EQ(cache.counters().hits, 1u);
    EXPECT_EQ(cache.counters().misses, 1u);
    EXPECT_EQ(cache.counters().insertions, 1u);

    // And the cached kernel computes the same bits.
    exec::Buffers a(*program), b(*program);
    fillInputs(*program, a);
    fillInputs(*program, b);
    auto ra = executeKernel(cold, a);
    auto rb = executeKernel(warm, b);
    expectSameStats(ra.stats, rb.stats);
    expectSameBuffers(a, b);
}

TEST(KernelCache, RegistryWideDifferentialSweep)
{
    const Strategy strategies[] = {Strategy::Ours, Strategy::Naive,
                                   Strategy::PolyMage};
    exec::KernelCache cache;
    for (const auto &spec : workloadRegistry()) {
        auto params = smallParams(spec);
        auto program = std::make_shared<const ir::Program>(
            spec.make(params));
        for (Strategy strategy : strategies) {
            SCOPED_TRACE(std::string(spec.name) + "/" +
                         strategyName(strategy));
            PipelineOptions opts;
            opts.strategy = strategy;
            opts.tileSizes = spec.defaultTiles;
            Pipeline pipeline(opts);

            // Cache off, cache cold, cache warm.
            ArtifactOptions off;
            ArtifactOptions on;
            on.cache = &cache;
            auto plain = compileKernel(pipeline, program, off);
            auto cold = compileKernel(pipeline, program, on);
            auto warm = compileKernel(pipeline, program, on);
            ASSERT_TRUE(plain.ok());
            ASSERT_TRUE(cold.ok());
            ASSERT_TRUE(warm.ok());
            EXPECT_FALSE(cold.fromCache);
            EXPECT_TRUE(warm.fromCache);
            EXPECT_EQ(plain.fingerprint, cold.fingerprint);
            EXPECT_EQ(cold.fingerprint, warm.fingerprint);

            exec::Buffers ba(*program), bb(*program), bc(*program);
            fillInputs(*program, ba);
            fillInputs(*program, bb);
            fillInputs(*program, bc);
            auto ra = executeKernel(plain, ba);
            auto rb = executeKernel(cold, bb);
            auto rc = executeKernel(warm, bc);
            expectSameStats(ra.stats, rb.stats);
            expectSameStats(ra.stats, rc.stats);
            expectSameBuffers(ba, bb);
            expectSameBuffers(ba, bc);
        }
    }
    EXPECT_EQ(cache.counters().evictions, 0u);
    EXPECT_EQ(cache.entries(),
              workloadRegistry().size() * 3);
}

TEST(KernelCache, EvictsUnderTinyCapacity)
{
    // A capacity small enough for roughly one image: inserting the
    // registry one after another must evict, and the counters must
    // say so.
    exec::KernelCache cache(/*capacity_bytes=*/16 * 1024,
                            /*shards=*/1);
    ArtifactOptions aopts;
    aopts.cache = &cache;
    size_t compiled = 0;
    for (const auto &spec : workloadRegistry()) {
        auto program = std::make_shared<const ir::Program>(
            spec.make(smallParams(spec)));
        PipelineOptions opts;
        opts.tileSizes = spec.defaultTiles;
        auto artifact =
            compileKernel(Pipeline(opts), program, aopts);
        ASSERT_TRUE(artifact.ok());
        ++compiled;
    }
    EXPECT_GT(cache.counters().evictions, 0u);
    EXPECT_LT(cache.entries(), compiled);
    EXPECT_LE(cache.bytes(), cache.capacityBytes());
    // Shrinking to (clamped) zero empties it.
    cache.setCapacityBytes(1);
    EXPECT_EQ(cache.entries(), 0u);
}

TEST(KernelCache, DowngradedCompilesAreNeverCached)
{
    exec::KernelCache cache;
    auto program = smallConv();
    Pipeline pipeline{PipelineOptions{}};
    ArtifactOptions aopts;
    aopts.cache = &cache;

    CompileContext tight;
    tight.budget.fmEliminations = 1; // trips on the first attempt
    auto downgraded = compileKernel(pipeline, program, tight, aopts);
    ASSERT_TRUE(downgraded.ok());
    EXPECT_TRUE(downgraded.downgraded());
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.counters().insertions, 0u);

    // A later unconstrained compile of the same key gets the real
    // thing (a miss, not the downgraded artifact).
    CompileContext free_ctx;
    auto full = compileKernel(pipeline, program, free_ctx, aopts);
    ASSERT_TRUE(full.ok());
    EXPECT_FALSE(full.fromCache);
    EXPECT_FALSE(full.downgraded());
    EXPECT_EQ(full.fingerprint, downgraded.fingerprint);
    EXPECT_EQ(cache.entries(), 1u);
}

TEST(KernelCache, ConcurrentCompileAndLookupIsSafe)
{
    // Several threads compile the same few programs against one
    // shared cache: every artifact must come back valid and execute
    // to the same bits as a reference. Run under TSAN by
    // scripts/check.sh --tsan-only.
    exec::KernelCache cache(exec::KernelCache::kDefaultCapacityBytes,
                            4);
    std::vector<std::shared_ptr<const ir::Program>> programs;
    programs.push_back(smallConv());
    programs.push_back(std::make_shared<const ir::Program>(
        workloads::makeConv2D({24, 24, 3, 3})));
    programs.push_back(std::make_shared<const ir::Program>(
        workloads::makeConv2D({32, 16, 3, 3})));

    // Reference results, compiled without the cache.
    std::vector<std::string> reference;
    for (const auto &p : programs) {
        auto artifact = compileKernel(Pipeline(PipelineOptions{}), p);
        exec::Buffers buf(*p);
        fillInputs(*p, buf);
        executeKernel(artifact, buf);
        std::string bits;
        for (size_t t = 0; t < buf.numTensors(); ++t)
            bits.append(
                reinterpret_cast<const char *>(
                    buf.data(int(t)).data()),
                buf.data(int(t)).size() * sizeof(double));
        reference.push_back(std::move(bits));
    }

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            for (int iter = 0; iter < 6; ++iter) {
                const size_t pi = size_t(t + iter) % programs.size();
                const auto &p = programs[pi];
                ArtifactOptions aopts;
                aopts.cache = &cache;
                auto artifact =
                    compileKernel(Pipeline(PipelineOptions{}), p, aopts);
                if (!artifact.ok()) {
                    ++failures;
                    continue;
                }
                exec::Buffers buf(*p);
                fillInputs(*p, buf);
                executeKernel(artifact, buf);
                std::string bits;
                for (size_t ti = 0; ti < buf.numTensors(); ++ti)
                    bits.append(
                        reinterpret_cast<const char *>(
                            buf.data(int(ti)).data()),
                        buf.data(int(ti)).size() * sizeof(double));
                if (bits != reference[pi])
                    ++failures;
            }
        });
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    // Concurrent first misses of one key may each compile and
    // insert (the overwrite is benign), so insertions can exceed the
    // key count -- but the map still holds exactly one entry per key.
    EXPECT_EQ(cache.entries(), programs.size());
    EXPECT_GE(cache.counters().insertions, programs.size());
    EXPECT_GT(cache.counters().hits, 0u);
}

TEST(OpCacheLru, EvictsLeastRecentlyUsedNotEverything)
{
    // Regression for the old wholesale flush: storing past the entry
    // ceiling must evict exactly the overflow, coldest first, and
    // count it.
    pres::fm::PresCtx ctx;
    pres::OpCache cache(/*max_entries=*/4);
    auto base = pres::parseSet("{ S[i] : 0 <= i <= 10 }");
    const pres::BasicSet &bs = base.pieces().at(0);

    std::vector<pres::OpCache::Key> keys;
    for (uint64_t i = 0; i < 6; ++i)
        keys.push_back(pres::OpCache::makeKey(
            pres::Op::ProjectOut, bs, i, 1));
    for (size_t i = 0; i < keys.size(); ++i)
        cache.storeBool(ctx, keys[i], i % 2 == 0);

    EXPECT_EQ(cache.entries(), 4u);
    EXPECT_EQ(cache.stats().evictions, 2u);
    // The two oldest are gone, the four newest survive.
    EXPECT_EQ(cache.findBool(ctx, keys[0]), nullptr);
    EXPECT_EQ(cache.findBool(ctx, keys[1]), nullptr);
    for (size_t i = 2; i < 6; ++i)
        EXPECT_NE(cache.findBool(ctx, keys[i]), nullptr)
            << "key " << i;

    // A find refreshes recency: key 2 survives the next eviction.
    ASSERT_NE(cache.findBool(ctx, keys[2]), nullptr);
    auto extra = pres::OpCache::makeKey(
        pres::Op::ProjectOut, bs, 99, 1);
    cache.storeBool(ctx, extra, true);
    EXPECT_EQ(cache.stats().evictions, 3u);
    EXPECT_NE(cache.findBool(ctx, keys[2]), nullptr);
    EXPECT_EQ(cache.findBool(ctx, keys[3]), nullptr); // now coldest
}

TEST(TuneDb, RoundTripsThroughDiskAndRejectsForeignFiles)
{
    std::string path =
        testing::TempDir() + "polyfuse_tunedb_test.json";
    std::remove(path.c_str());

    pres::Fingerprinter fp;
    fp.mix("tunedb-test-key");
    auto key = fp.fingerprint();
    {
        perfmodel::TuneDb db(path); // missing file: empty store
        EXPECT_EQ(db.size(), 0u);
        perfmodel::TuneEntry entry;
        entry.strategy = "ours";
        entry.tiles = {32, 64};
        entry.tier = "bytecode";
        entry.modeledMs = 1.25;
        entry.evaluated = 16;
        db.put(key, entry);
        ASSERT_TRUE(db.save());
    }
    {
        perfmodel::TuneDb db(path);
        EXPECT_EQ(db.size(), 1u);
        perfmodel::TuneEntry got;
        ASSERT_TRUE(db.find(key, &got));
        EXPECT_EQ(got.strategy, "ours");
        EXPECT_EQ(got.tiles, (std::vector<int64_t>{32, 64}));
        EXPECT_EQ(got.tier, "bytecode");
        EXPECT_DOUBLE_EQ(got.modeledMs, 1.25);
        EXPECT_EQ(got.evaluated, 16u);
    }
    {
        // A foreign/corrupt file fails the load (empty store).
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{\"version\": 2, \"entries\": []}", f);
        std::fclose(f);
        perfmodel::TuneDb db(path);
        EXPECT_EQ(db.size(), 0u);
    }
    std::remove(path.c_str());
}

std::string
readFileText(const std::string &path)
{
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

void
writeFileText(const std::string &path, const std::string &text)
{
    std::ofstream f(path, std::ios::trunc);
    f << text;
}

pres::Fingerprint
tuneKey(const std::string &seed)
{
    pres::Fingerprinter fp;
    fp.mix(seed);
    return fp.fingerprint();
}

perfmodel::TuneEntry
tuneEntry(const std::string &strategy)
{
    perfmodel::TuneEntry entry;
    entry.strategy = strategy;
    entry.tiles = {16, 8};
    entry.tier = "bytecode";
    entry.modeledMs = 2.5;
    entry.evaluated = 9;
    return entry;
}

TEST(TuneDb, DropsByteFlippedRecordsAndRegeneratesCleanly)
{
    std::string path =
        testing::TempDir() + "polyfuse_tunedb_flip.json";
    std::remove(path.c_str());
    auto key_a = tuneKey("flip-a");
    auto key_b = tuneKey("flip-b");
    {
        perfmodel::TuneDb db(path);
        db.put(key_a, tuneEntry("ours"));
        db.put(key_b, tuneEntry("minfuse"));
        ASSERT_TRUE(db.save());
    }

    // Flip one byte inside a string value: the JSON stays perfectly
    // well formed, so only the per-record checksum can catch it.
    std::string text = readFileText(path);
    size_t pos = text.find("\"ours\"");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 1] = 'x'; // "ours" -> "xurs"
    writeFileText(path, text);

    {
        perfmodel::TuneDb db(path);
        EXPECT_EQ(db.size(), 1u);
        EXPECT_EQ(db.lastLoadDropped(), 1u);
        perfmodel::TuneEntry got;
        EXPECT_FALSE(db.find(key_a, &got)); // the damaged record
        ASSERT_TRUE(db.find(key_b, &got)); // the intact one
        EXPECT_EQ(got.strategy, "minfuse");
        // save() rewrites a clean store from the salvage.
        ASSERT_TRUE(db.save());
    }
    {
        perfmodel::TuneDb db(path);
        EXPECT_EQ(db.size(), 1u);
        EXPECT_EQ(db.lastLoadDropped(), 0u);
    }
    std::remove(path.c_str());
}

TEST(TuneDb, SalvagesThePrefixOfATruncatedStore)
{
    std::string path =
        testing::TempDir() + "polyfuse_tunedb_trunc.json";
    std::remove(path.c_str());
    {
        perfmodel::TuneDb db(path);
        db.put(tuneKey("trunc-a"), tuneEntry("ours"));
        db.put(tuneKey("trunc-b"), tuneEntry("minfuse"));
        db.put(tuneKey("trunc-c"), tuneEntry("hybridfuse"));
        ASSERT_TRUE(db.save());
    }

    // Chop the file mid-way through the last record, the way a
    // crashed writer or a full disk would.
    std::string text = readFileText(path);
    size_t last = text.rfind("{\"fp\"");
    ASSERT_NE(last, std::string::npos);
    writeFileText(path, text.substr(0, last + 10));

    perfmodel::TuneDb db(path);
    EXPECT_EQ(db.size(), 2u);
    EXPECT_EQ(db.lastLoadDropped(), 1u);
    std::remove(path.c_str());
}

TEST(TuneDb, RejectsLegacyRecordsWithoutChecksums)
{
    std::string path =
        testing::TempDir() + "polyfuse_tunedb_nocrc.json";
    std::remove(path.c_str());
    {
        perfmodel::TuneDb db(path);
        db.put(tuneKey("nocrc"), tuneEntry("ours"));
        ASSERT_TRUE(db.save());
    }

    // Strip the checksum field: an un-checksummed record cannot be
    // distinguished from a damaged one, so it is dropped too.
    std::string text = readFileText(path);
    size_t pos = text.find(", \"crc\": \"");
    ASSERT_NE(pos, std::string::npos);
    size_t end = text.find("\"", pos + 10);
    ASSERT_NE(end, std::string::npos);
    text.erase(pos, end + 1 - pos);
    writeFileText(path, text);

    perfmodel::TuneDb db(path);
    EXPECT_EQ(db.size(), 0u);
    EXPECT_EQ(db.lastLoadDropped(), 1u);
    std::remove(path.c_str());
}

TEST(TuneDb, ChecksumCoversEveryFieldOfTheRecord)
{
    auto key = tuneKey("crc-fields");
    perfmodel::TuneEntry entry = tuneEntry("ours");
    uint64_t crc = perfmodel::recordChecksum(key.hex(), entry);

    perfmodel::TuneEntry other = entry;
    other.strategy = "minfuse";
    EXPECT_NE(perfmodel::recordChecksum(key.hex(), other), crc);
    other = entry;
    other.tiles = {16, 9};
    EXPECT_NE(perfmodel::recordChecksum(key.hex(), other), crc);
    other = entry;
    other.tier = "native";
    EXPECT_NE(perfmodel::recordChecksum(key.hex(), other), crc);
    other = entry;
    other.modeledMs = 2.5000011;
    EXPECT_NE(perfmodel::recordChecksum(key.hex(), other), crc);
    other = entry;
    other.evaluated = 10;
    EXPECT_NE(perfmodel::recordChecksum(key.hex(), other), crc);
    EXPECT_NE(perfmodel::recordChecksum(tuneKey("crc-other").hex(),
                                        entry),
              crc);

    // The hex spelling is stable and 16 digits wide.
    EXPECT_EQ(perfmodel::checksumHex(crc).size(), 16u);
    EXPECT_EQ(perfmodel::checksumHex(crc),
              perfmodel::checksumHex(crc));
}

TEST(TuneDb, AutotuneWarmStartsFromTheStore)
{
    std::string path =
        testing::TempDir() + "polyfuse_tunedb_autotune.json";
    std::remove(path.c_str());

    auto program = smallConv();
    auto graph = deps::DependenceGraph::compute(*program);
    auto init = [&](exec::Buffers &b) { fillInputs(*program, b); };
    perfmodel::AutotuneOptions opts;
    opts.candidates = {4, 8};
    opts.dims = 2;

    perfmodel::TuneDb db(path);
    opts.db = &db;
    auto cold = perfmodel::autotuneTileSizes(*program, graph, init,
                                             opts);
    EXPECT_FALSE(cold.warmStart);
    EXPECT_EQ(cold.evaluated, 4u); // 2 candidates ^ 2 dims
    ASSERT_EQ(cold.tileSizes.size(), 2u);

    // Same store object and a fresh one loaded from disk both
    // warm-start to the identical tiles without evaluating.
    auto warm = perfmodel::autotuneTileSizes(*program, graph, init,
                                             opts);
    EXPECT_TRUE(warm.warmStart);
    EXPECT_EQ(warm.evaluated, 0u);
    EXPECT_EQ(warm.tileSizes, cold.tileSizes);

    perfmodel::TuneDb reloaded(path);
    opts.db = &reloaded;
    auto warm2 = perfmodel::autotuneTileSizes(*program, graph, init,
                                              opts);
    EXPECT_TRUE(warm2.warmStart);
    EXPECT_EQ(warm2.tileSizes, cold.tileSizes);

    // A different search configuration is a different key: it
    // re-tunes instead of reusing the stored entry.
    perfmodel::AutotuneOptions other = opts;
    other.candidates = {4, 8, 16};
    auto retuned = perfmodel::autotuneTileSizes(*program, graph,
                                                init, other);
    EXPECT_FALSE(retuned.warmStart);
    EXPECT_EQ(reloaded.size(), 2u);
    std::remove(path.c_str());
}

} // namespace
} // namespace driver
} // namespace polyfuse
