/**
 * @file
 * Tests for the isl-like textual parser.
 */

#include <gtest/gtest.h>

#include "pres/parser.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace pres {
namespace {

TEST(Parser, RectangleDomain)
{
    BasicSet s = parseBasicSet(
        "[N, M] -> { S[i, j] : 0 <= i < N and 0 <= j < M }");
    EXPECT_EQ(s.space().outTuple(), "S");
    EXPECT_EQ(s.space().numOut(), 2u);
    EXPECT_EQ(s.enumerate({{"N", 3}, {"M", 2}}).size(), 6u);
}

TEST(Parser, ChainedComparisons)
{
    BasicSet s = parseBasicSet("[N] -> { S[i, j] : 0 <= i <= j < N }");
    EXPECT_EQ(s.enumerate({{"N", 4}}).size(), 10u);
}

TEST(Parser, ConvDomainMatchesPaper)
{
    BasicSet s = parseBasicSet(
        "[H, W, KH, KW] -> { S2[h, w, kh, kw] : 0 <= h <= H - KH and "
        "0 <= w <= W - KW and 0 <= kh < KH and 0 <= kw < KW }");
    auto pts = s.enumerate(
        {{"H", 6}, {"W", 6}, {"KH", 3}, {"KW", 3}});
    EXPECT_EQ(pts.size(), 16u * 9u);
}

TEST(Parser, AccessMapWithExpressions)
{
    ParsedAccess a =
        parseAccess("{ S2[h, w, kh, kw] -> A[h + kh, w + kw] }");
    EXPECT_TRUE(a.hasExprs);
    ASSERT_EQ(a.outExprs.size(), 2u);
    // Row layout: [h, w, kh, kw, const].
    EXPECT_EQ(a.outExprs[0], (std::vector<int64_t>{1, 0, 1, 0, 0}));
    EXPECT_EQ(a.outExprs[1], (std::vector<int64_t>{0, 1, 0, 1, 0}));
}

TEST(Parser, AccessWithParamsAndConstants)
{
    ParsedAccess a = parseAccess(
        "[N] -> { S[i] -> A[2*i + N - 1, 0] }");
    EXPECT_TRUE(a.hasExprs);
    EXPECT_EQ(a.outExprs[0], (std::vector<int64_t>{2, 1, -1}));
    EXPECT_EQ(a.outExprs[1], (std::vector<int64_t>{0, 0, 0}));
}

TEST(Parser, CoefficientShorthand)
{
    BasicSet s = parseBasicSet("{ S[i] : 2i >= 3 and 2*i <= 7 }");
    auto pts = s.enumerate({});
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(pts[0][0], 2);
    EXPECT_EQ(pts[1][0], 3);
}

TEST(Parser, UnionPieces)
{
    Set s = parseSet("{ S0[i] : 0 <= i < 3; S1[i, j] : i = 0 and "
                     "0 <= j < 2 }");
    EXPECT_EQ(s.pieces().size(), 2u);
    EXPECT_EQ(s.enumerateTuple("S0", {}).size(), 3u);
    EXPECT_EQ(s.enumerateTuple("S1", {}).size(), 2u);
}

TEST(Parser, MapWithConstraints)
{
    // Tile maps use literal tile sizes (the paper notes isl requires
    // fixed integer tile sizes; parametric sizes are non-affine).
    BasicMap m =
        parseBasicMap("{ S[h] -> O[o] : 4o <= h < 4o + 4 }");
    auto img = m.fixInDim(0, 9).range().enumerate({});
    ASSERT_EQ(img.size(), 1u);
    EXPECT_EQ(img[0][0], 2); // floor(9/4)
}

TEST(Parser, ParametricTileSizeIsRejectedAsNonAffine)
{
    EXPECT_THROW(
        parseBasicMap("[T] -> { S[h] -> O[o] : T*o <= h < T*o + T }"),
        FatalError);
}

TEST(Parser, ReusedNameBecomesEquality)
{
    // Out tuple reuses "i": equality out0 == i.
    BasicMap m = parseBasicMap("{ S[i] -> A[i] }");
    auto img = m.fixInDim(0, 7).range().enumerate({});
    ASSERT_EQ(img.size(), 1u);
    EXPECT_EQ(img[0][0], 7);
}

TEST(Parser, ZeroDimTuple)
{
    BasicSet s = parseBasicSet("{ S[] }");
    EXPECT_EQ(s.space().numOut(), 0u);
    EXPECT_FALSE(s.isEmpty());
}

TEST(Parser, NegativeAndParenthesizedExprs)
{
    BasicSet s = parseBasicSet("{ S[i] : -(i - 2) >= 0 and i >= -1 }");
    auto pts = s.enumerate({});
    EXPECT_EQ(pts.size(), 4u); // -1, 0, 1, 2
}

TEST(Parser, UnknownIdentifierIsFatal)
{
    EXPECT_THROW(parseBasicSet("{ S[i] : 0 <= i < N }"), FatalError);
}

TEST(Parser, NonAffineProductIsFatal)
{
    EXPECT_THROW(parseBasicSet("{ S[i, j] : i*j >= 0 }"), FatalError);
}

TEST(Parser, SyntaxErrorIsFatal)
{
    EXPECT_THROW(parseBasicSet("{ S[i : }"), FatalError);
    EXPECT_THROW(parseBasicMap("{ S[i] -> }"), FatalError);
    EXPECT_THROW(parseBasicSet("S[i]"), FatalError);
}

TEST(Parser, AccessWithoutExprsReportsNoExprs)
{
    ParsedAccess a = parseAccess("{ S[i] -> A[j] : i <= j <= i + 2 }");
    EXPECT_FALSE(a.hasExprs);
    EXPECT_EQ(a.map.fixInDim(0, 0).range().enumerate({}).size(), 3u);
}

// --- Error paths: every malformed input must raise FatalError with
// a position-bearing message ("... at offset N"). -------------------

struct ErrorCase
{
    const char *label;
    const char *text;
    bool isMap; ///< parse as map instead of set
};

TEST(ParserErrors, MalformedInputsCarryOffsets)
{
    const ErrorCase cases[] = {
        {"empty string", "", false},
        {"missing open brace", "S[i]", false},
        {"unterminated tuple", "{ S[i : }", false},
        {"truncated after arrow", "{ S[i] -> }", true},
        {"missing close brace", "{ S[i] : 0 <= i < 4", false},
        {"truncated constraint", "{ S[i] : 0 <=", false},
        {"bare colon no constraint", "{ S[i] : }", false},
        {"missing comparison", "{ S[i] : i }", false},
        {"bad character", "{ S[i] : i ? 0 }", false},
        {"bad character hash", "{ S[#] }", false},
        {"map without arrow", "{ S[i] A[i] }", true},
        {"double arrow", "{ S[i] -> -> A[i] }", true},
        {"dangling operator", "{ S[i] : 0 <= i + }", false},
        {"empty factor", "{ S[i] : <= 4 }", false},
        {"unbalanced paren", "{ S[i] : (i >= 0 }", false},
        {"trailing garbage", "{ S[i] } extra", false},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.label);
        try {
            if (c.isMap)
                parseMap(c.text);
            else
                parseSet(c.text);
            FAIL() << "expected FatalError for: " << c.text;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("parse error"),
                      std::string::npos)
                << e.what();
            EXPECT_NE(std::string(e.what()).find("at offset"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(ParserErrors, OffsetPointsAtTheOffendingCharacter)
{
    // "{ S[i] : i ? 0 }": the '?' sits at character offset 11.
    try {
        parseSet("{ S[i] : i ? 0 }");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("at offset 11"),
                  std::string::npos)
            << e.what();
    }
    // Truncated input reports the end-of-text offset.
    try {
        parseSet("{ S[i] : 0 <=");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("at offset 13"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ParserErrors, SemanticErrorsStillNameTheIdentifier)
{
    // Unknown identifiers and non-affine products are semantic, not
    // positional; the message names the construct instead.
    try {
        parseSet("{ S[i] : 0 <= i < N }");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("'N'"),
                  std::string::npos)
            << e.what();
    }
    try {
        parseSet("{ S[i, j] : i*j >= 0 }");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("non-affine"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace pres
} // namespace polyfuse
