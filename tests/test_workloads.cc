/**
 * @file
 * Workload tests: every benchmark program builds with the expected
 * structure, and -- the heavy check -- every scheduling strategy
 * (min/smart/max/hybrid fusion and the paper's composition, CPU and
 * GPU flavours) computes the same live-out values as the untouched
 * initial schedule. This differential test exercises the whole
 * pipeline (sets, deps, fusion, Algorithms 1-3, codegen, promotion,
 * execution) on realistic multi-rate, data-dependent programs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "exec/executor.hh"
#include "schedule/fusion.hh"
#include "workloads/conv2d.hh"
#include "workloads/equake.hh"
#include "workloads/pipelines.hh"
#include "workloads/polybench.hh"
#include "workloads/resnet50.hh"

namespace polyfuse {
namespace workloads {
namespace {

using schedule::FusionPolicy;
using schedule::ScheduleTree;

/** Fill every input (and output, for read-modify-write kernels). */
void
fillInputs(const ir::Program &p, exec::Buffers &buf)
{
    if (p.name() == "equake") {
        initEquakeInputs(p, buf, 11);
        return;
    }
    for (size_t t = 0; t < p.tensors().size(); ++t) {
        if (p.tensor(t).kind != ir::TensorKind::Temp)
            buf.fillPattern(t, 1000 + t);
        // Image pipelines expect values in [0, 1].
        if (p.tensor(t).kind == ir::TensorKind::Input)
            for (auto &v : buf.data(t))
                v = std::abs(v);
    }
}

/** Live-out tensors of @p p after running @p tree. */
std::vector<std::vector<double>>
runOutputs(const ir::Program &p, const ScheduleTree &tree)
{
    exec::Buffers buf(p);
    fillInputs(p, buf);
    exec::run(p, codegen::generateAst(tree), buf);
    std::vector<std::vector<double>> out;
    for (size_t t = 0; t < p.tensors().size(); ++t)
        if (p.tensor(t).kind == ir::TensorKind::Output)
            out.push_back(buf.data(t));
    return out;
}

void
expectNear(const std::vector<std::vector<double>> &a,
           const std::vector<std::vector<double>> &b,
           const std::string &label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (size_t t = 0; t < a.size(); ++t) {
        ASSERT_EQ(a[t].size(), b[t].size()) << label;
        for (size_t i = 0; i < a[t].size(); ++i)
            ASSERT_NEAR(a[t][i], b[t][i], 1e-9)
                << label << " tensor " << t << " elem " << i;
    }
}

/** The cross-strategy differential check. */
void
checkAllStrategies(const ir::Program &p,
                   const std::vector<int64_t> &tiles)
{
    auto graph = deps::DependenceGraph::compute(p);
    ScheduleTree initial = ScheduleTree::initial(p);
    initial.annotate(graph);
    auto ref = runOutputs(p, initial);

    for (auto policy : {FusionPolicy::Min, FusionPolicy::Smart,
                        FusionPolicy::Max, FusionPolicy::Hybrid}) {
        auto r = schedule::applyFusion(p, graph, policy);
        expectNear(runOutputs(p, r.tree), ref,
                   p.name() + "/" + fusionPolicyName(policy));
    }

    for (unsigned par : {1u, 2u}) {
        core::ComposeOptions opts;
        opts.tileSizes = tiles;
        opts.targetParallelism = par;
        auto r = core::compose(p, graph, opts);
        expectNear(runOutputs(p, r.tree), ref,
                   p.name() + "/composed-p" + std::to_string(par));
    }
}

TEST(Workloads, UnsharpStructure)
{
    ir::Program p = makeUnsharpMask({64, 48});
    EXPECT_EQ(p.numGroups(), 4u);
    EXPECT_EQ(p.statements().size(), 4u);
    EXPECT_TRUE(p.groupLiveOut(3));
    EXPECT_FALSE(p.groupLiveOut(0));
}

TEST(Workloads, UnsharpAllStrategiesAgree)
{
    checkAllStrategies(makeUnsharpMask({64, 48}), {16, 16});
}

TEST(Workloads, HarrisStructure)
{
    ir::Program p = makeHarris({64, 64});
    EXPECT_EQ(p.numGroups(), 11u);
    EXPECT_TRUE(p.groupLiveOut(10));
}

TEST(Workloads, HarrisAllStrategiesAgree)
{
    checkAllStrategies(makeHarris({64, 48}), {16, 16});
}

TEST(Workloads, BilateralStructure)
{
    ir::Program p = makeBilateralGrid({64, 64});
    EXPECT_EQ(p.numGroups(), 6u);
    EXPECT_EQ(p.statements().size(), 7u);
    EXPECT_TRUE(p.groupLiveOut(5));
}

TEST(Workloads, BilateralAllStrategiesAgree)
{
    checkAllStrategies(makeBilateralGrid({64, 64}), {16, 16});
}

TEST(Workloads, CameraStructure)
{
    ir::Program p = makeCameraPipeline({64, 64});
    EXPECT_EQ(p.statements().size(), 16u);
    EXPECT_TRUE(p.groupLiveOut(p.numGroups() - 1));
}

TEST(Workloads, CameraAllStrategiesAgree)
{
    checkAllStrategies(makeCameraPipeline({64, 64}), {8, 8});
}

TEST(Workloads, InterpolateStructure)
{
    ir::Program p = makeMultiscaleInterp({64, 64});
    EXPECT_EQ(p.statements().size(), 24u);
    EXPECT_EQ(p.numGroups(), 12u);
}

TEST(Workloads, InterpolateAllStrategiesAgree)
{
    checkAllStrategies(makeMultiscaleInterp({64, 64}), {8, 8});
}

TEST(Workloads, LocalLaplacianStructure)
{
    ir::Program p = makeLocalLaplacian({32, 32});
    EXPECT_EQ(p.statements().size(), 11u);
}

TEST(Workloads, LocalLaplacianAllStrategiesAgree)
{
    checkAllStrategies(makeLocalLaplacian({32, 32}), {8, 8});
}

TEST(Workloads, EquakeStructure)
{
    ir::Program p = makeEquake({512, 8});
    EXPECT_EQ(p.numGroups(), 4u);
    EXPECT_EQ(p.statements().size(), 6u);
    EXPECT_TRUE(p.groupLiveOut(3));
}

TEST(Workloads, EquakeAllStrategiesAgree)
{
    checkAllStrategies(makeEquake({512, 8}), {64});
}

TEST(Workloads, TwoMmAllStrategiesAgree)
{
    checkAllStrategies(make2mm(24, 20, 16, 28), {8, 8});
}

TEST(Workloads, GemverAllStrategiesAgree)
{
    checkAllStrategies(makeGemver(48), {16, 16});
}

TEST(Workloads, CovarianceAllStrategiesAgree)
{
    checkAllStrategies(makeCovariance(24, 20), {8, 8});
}

TEST(Workloads, Resnet50LayerTable)
{
    auto layers = resnet50Layers();
    EXPECT_EQ(layers.size(), 53u);
    // conv1.
    EXPECT_EQ(layers[0].cin, 3);
    EXPECT_EQ(layers[0].cout, 64);
    EXPECT_EQ(layers[0].kernel, 7);
    // Last expand conv.
    EXPECT_EQ(layers.back().cout, 2048);
    double total_flops = 0;
    for (const auto &l : layers)
        total_flops += l.flops();
    // ResNet-50 forward is ~3.8 GFLOPs x2 (MAC = 2 flops) at 224.
    EXPECT_GT(total_flops, 6e9);
    EXPECT_LT(total_flops, 9e9);
}

TEST(Workloads, ConvBnProgramComposes)
{
    memsim::ConvLayer small;
    small.cin = 8;
    small.cout = 8;
    small.height = 10;
    small.width = 10;
    small.kernel = 3;
    ir::Program p = makeConvBnProgram(small);
    checkAllStrategies(p, {4, 4, 4});
}

} // namespace
} // namespace workloads
} // namespace polyfuse
