/**
 * @file
 * Unit tests for Space, LinExpr/constraint building, and BasicSet
 * fundamentals: simplification, emptiness, enumeration, bounds.
 */

#include <gtest/gtest.h>

#include "pres/affine.hh"
#include "pres/basic_set.hh"
#include "pres/space.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace pres {
namespace {

/** 0 <= i < n for set dim i; n given as a parameter name. */
void
boundDim(BasicSet &s, unsigned dim, const std::string &param)
{
    const Space &sp = s.space();
    LinExpr d = LinExpr::setDim(sp, dim);
    s.addConstraint(geCons(d, LinExpr::constant(sp, 0)));
    s.addConstraint(ltCons(d, LinExpr::param(sp, param)));
}

// Regression: isConstant()/constant() on a default-constructed
// (empty-row) Constraint used to read coeffs.back() of an empty
// buffer. An empty row is vacuously constant with constant 0.
TEST(Constraint, EmptyRowIsVacuouslyConstant)
{
    Constraint c;
    EXPECT_TRUE(c.coeffs.empty());
    EXPECT_TRUE(c.isConstant());
    EXPECT_EQ(c.constant(), 0);

    Constraint nonzero(false, {2, 0, 5});
    EXPECT_FALSE(nonzero.isConstant());
    EXPECT_EQ(nonzero.constant(), 5);
    Constraint constant_row(true, {0, 0, -3});
    EXPECT_TRUE(constant_row.isConstant());
    EXPECT_EQ(constant_row.constant(), -3);
    Constraint just_const(false, {7});
    EXPECT_TRUE(just_const.isConstant());
    EXPECT_EQ(just_const.constant(), 7);
}

TEST(Space, Layout)
{
    Space sp = Space::forMap("S", 2, "A", 3, {"N", "M"});
    EXPECT_TRUE(sp.isMap());
    EXPECT_EQ(sp.numIn(), 2u);
    EXPECT_EQ(sp.numOut(), 3u);
    EXPECT_EQ(sp.numDims(), 5u);
    EXPECT_EQ(sp.numCols(), 8u);
    EXPECT_EQ(sp.inCol(1), 1u);
    EXPECT_EQ(sp.outCol(0), 2u);
    EXPECT_EQ(sp.paramCol(1), 6u);
    EXPECT_EQ(sp.constCol(), 7u);
    EXPECT_EQ(sp.paramIndex("M"), 1);
    EXPECT_EQ(sp.paramIndex("Q"), -1);
}

TEST(Space, DomainRangeReverse)
{
    Space sp = Space::forMap("S", 2, "A", 3, {"N"});
    EXPECT_EQ(sp.domainSpace().outTuple(), "S");
    EXPECT_EQ(sp.domainSpace().numOut(), 2u);
    EXPECT_EQ(sp.rangeSpace().outTuple(), "A");
    EXPECT_EQ(sp.reversed().inTuple(), "A");
    EXPECT_EQ(sp.reversed().numIn(), 3u);
    EXPECT_THROW(sp.domainSpace().domainSpace(), PanicError);
}

TEST(BasicSet, UniverseIsNotEmpty)
{
    BasicSet s(Space::forSet("S", 2));
    EXPECT_FALSE(s.isEmpty());
}

TEST(BasicSet, ContradictionIsEmpty)
{
    Space sp = Space::forSet("S", 1);
    BasicSet s(sp);
    LinExpr i = LinExpr::setDim(sp, 0);
    s.addConstraint(geCons(i, LinExpr::constant(sp, 5)));
    s.addConstraint(leCons(i, LinExpr::constant(sp, 3)));
    EXPECT_TRUE(s.isEmpty());
}

TEST(BasicSet, GcdTighteningDetectsIntegerEmptiness)
{
    // 2i == 1 has no integer solution.
    Space sp = Space::forSet("S", 1);
    BasicSet s(sp);
    LinExpr i = LinExpr::setDim(sp, 0);
    s.addConstraint(eqCons(i * 2, LinExpr::constant(sp, 1)));
    EXPECT_TRUE(s.isEmpty());
}

TEST(BasicSet, GcdTighteningOnInequalities)
{
    // 2i >= 1 and 2i <= 3 admits only i == 1.
    Space sp = Space::forSet("S", 1);
    BasicSet s(sp);
    LinExpr i = LinExpr::setDim(sp, 0);
    s.addConstraint(geCons(i * 2, LinExpr::constant(sp, 1)));
    s.addConstraint(leCons(i * 2, LinExpr::constant(sp, 3)));
    auto pts = s.enumerate({});
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0][0], 1);
}

TEST(BasicSet, EnumerateRectangle)
{
    Space sp = Space::forSet("S", 2, {"N"});
    BasicSet s(sp);
    boundDim(s, 0, "N");
    boundDim(s, 1, "N");
    auto pts = s.enumerate({{"N", 3}});
    EXPECT_EQ(pts.size(), 9u);
    EXPECT_EQ(pts.front(), (std::vector<int64_t>{0, 0}));
    EXPECT_EQ(pts.back(), (std::vector<int64_t>{2, 2}));
}

TEST(BasicSet, EnumerateTriangle)
{
    // 0 <= i <= j < N.
    Space sp = Space::forSet("S", 2, {"N"});
    BasicSet s(sp);
    LinExpr i = LinExpr::setDim(sp, 0), j = LinExpr::setDim(sp, 1);
    s.addConstraint(geCons(i, LinExpr::constant(sp, 0)));
    s.addConstraint(leCons(i, j));
    s.addConstraint(ltCons(j, LinExpr::param(sp, "N")));
    auto pts = s.enumerate({{"N", 4}});
    EXPECT_EQ(pts.size(), 10u); // 4 + 3 + 2 + 1
}

TEST(BasicSet, ContainsHonorsParams)
{
    Space sp = Space::forSet("S", 1, {"N"});
    BasicSet s(sp);
    boundDim(s, 0, "N");
    EXPECT_TRUE(s.contains({4}, {{"N", 5}}));
    EXPECT_FALSE(s.contains({5}, {{"N", 5}}));
    EXPECT_FALSE(s.contains({-1}, {{"N", 5}}));
}

TEST(BasicSet, ProjectOutTriangleGivesFullRange)
{
    // Project i out of { [i,j] : 0 <= i <= j < N } -> { [j] : 0<=j<N }.
    Space sp = Space::forSet("S", 2, {"N"});
    BasicSet s(sp);
    LinExpr i = LinExpr::setDim(sp, 0), j = LinExpr::setDim(sp, 1);
    s.addConstraint(geCons(i, LinExpr::constant(sp, 0)));
    s.addConstraint(leCons(i, j));
    s.addConstraint(ltCons(j, LinExpr::param(sp, "N")));
    BasicSet p = s.projectOut(0, 1);
    EXPECT_TRUE(p.wasExact());
    auto pts = p.enumerate({{"N", 4}});
    EXPECT_EQ(pts.size(), 4u);
}

TEST(BasicSet, ProjectOutKeepsOuterDim)
{
    Space sp = Space::forSet("S", 2, {"N"});
    BasicSet s(sp);
    boundDim(s, 0, "N");
    boundDim(s, 1, "N");
    BasicSet p = s.projectOut(1, 1);
    EXPECT_EQ(p.space().numOut(), 1u);
    int64_t lo, hi;
    ASSERT_TRUE(p.dimBounds(0, {{"N", 7}}, lo, hi));
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 6);
}

TEST(BasicSet, IntersectMergesParamLists)
{
    BasicSet a(Space::forSet("S", 1, {"N"}));
    boundDim(a, 0, "N");
    Space spb = Space::forSet("S", 1, {"M"});
    BasicSet b(spb);
    LinExpr i = LinExpr::setDim(spb, 0);
    b.addConstraint(ltCons(i, LinExpr::param(spb, "M")));
    BasicSet c = a.intersect(b);
    EXPECT_EQ(c.space().numParams(), 2u);
    auto pts = c.enumerate({{"N", 10}, {"M", 3}});
    EXPECT_EQ(pts.size(), 3u);
}

TEST(BasicSet, FixParamAndFixDim)
{
    Space sp = Space::forSet("S", 2, {"N"});
    BasicSet s(sp);
    boundDim(s, 0, "N");
    boundDim(s, 1, "N");
    BasicSet f = s.fixParam("N", 4);
    EXPECT_EQ(f.space().numParams(), 0u);
    EXPECT_EQ(f.enumerate({}).size(), 16u);
    BasicSet d = f.fixDim(0, 2);
    EXPECT_EQ(d.enumerate({}).size(), 4u);
}

TEST(BasicSet, MakeEmptyStaysEmptyThroughOps)
{
    Space sp = Space::forSet("S", 1, {"N"});
    BasicSet e = BasicSet::makeEmpty(sp);
    EXPECT_TRUE(e.isEmpty());
    BasicSet u(sp);
    boundDim(u, 0, "N");
    EXPECT_TRUE(e.intersect(u).isEmpty());
    EXPECT_TRUE(e.projectOut(0, 1).isEmpty());
    EXPECT_TRUE(e.enumerate({{"N", 5}}).empty());
}

TEST(BasicSet, EqualityAfterSimplification)
{
    Space sp = Space::forSet("S", 1);
    LinExpr i = LinExpr::setDim(sp, 0);
    BasicSet a(sp);
    a.addConstraint(geCons(i, LinExpr::constant(sp, 0)));
    a.addConstraint(geCons(i, LinExpr::constant(sp, -5))); // redundant
    a.addConstraint(leCons(i, LinExpr::constant(sp, 9)));
    BasicSet b(sp);
    b.addConstraint(leCons(i, LinExpr::constant(sp, 9)));
    b.addConstraint(geCons(i, LinExpr::constant(sp, 0)));
    EXPECT_TRUE(a == b);
}

TEST(BasicSet, OppositeInequalitiesBecomeEquality)
{
    Space sp = Space::forSet("S", 1);
    LinExpr i = LinExpr::setDim(sp, 0);
    BasicSet a(sp);
    a.addConstraint(geCons(i, LinExpr::constant(sp, 3)));
    a.addConstraint(leCons(i, LinExpr::constant(sp, 3)));
    a.simplify();
    ASSERT_EQ(a.constraints().size(), 1u);
    EXPECT_TRUE(a.constraints()[0].isEq);
    auto pts = a.enumerate({});
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0][0], 3);
}

TEST(BasicSet, InsertDimsLeavesNewDimsUnconstrained)
{
    Space sp = Space::forSet("S", 1, {"N"});
    BasicSet s(sp);
    boundDim(s, 0, "N");
    BasicSet w = s.insertDims(0, 2);
    EXPECT_EQ(w.space().numOut(), 3u);
    // Old constraint now applies to dim 2.
    EXPECT_TRUE(w.contains({100, -100, 1}, {{"N", 5}}));
    EXPECT_FALSE(w.contains({0, 0, 7}, {{"N", 5}}));
}

TEST(BasicSet, StrRendering)
{
    Space sp = Space::forSet("S0", 1, {"N"});
    BasicSet s(sp);
    boundDim(s, 0, "N");
    std::string text = s.str();
    EXPECT_NE(text.find("S0[i0]"), std::string::npos);
    EXPECT_NE(text.find("N"), std::string::npos);
}

TEST(BasicSet, ArityMismatchPanics)
{
    BasicSet s(Space::forSet("S", 2));
    Constraint c(false, {1, 0}); // too short
    EXPECT_THROW(s.addConstraint(c), PanicError);
}

} // namespace
} // namespace pres
} // namespace polyfuse
