/**
 * @file
 * Direct unit tests for the Fourier-Motzkin engine (pres/fm) and the
 * simple-hull operation: normalization/tightening rules, equality
 * substitution, opposite-inequality merging, and hull validity.
 */

#include <gtest/gtest.h>

#include "pres/fm.hh"
#include "pres/map.hh"
#include "pres/parser.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace pres {
namespace {

Constraint
ineq(std::vector<int64_t> coeffs)
{
    return Constraint(false, std::move(coeffs));
}

Constraint
eq(std::vector<int64_t> coeffs)
{
    return Constraint(true, std::move(coeffs));
}

TEST(FmEngine, NormalizeTightensInequalities)
{
    // 2x - 3 >= 0 -> x >= 2 (integer tightening: x - 2 >= 0).
    Constraint c = ineq({2, -3});
    ASSERT_TRUE(fm::normalizeRow(c));
    EXPECT_EQ(c.coeffs, (std::vector<int64_t>{1, -2}));
}

TEST(FmEngine, NormalizeDetectsInfeasibleEquality)
{
    // 2x + 1 == 0 has no integer solution.
    Constraint c = eq({2, 1});
    EXPECT_FALSE(fm::normalizeRow(c));
    // But 2x + 4 == 0 normalizes to x + 2 == 0.
    Constraint d = eq({2, 4});
    ASSERT_TRUE(fm::normalizeRow(d));
    EXPECT_EQ(d.coeffs, (std::vector<int64_t>{1, 2}));
}

TEST(FmEngine, NormalizeCanonicalizesEqualitySign)
{
    Constraint c = eq({-1, 5});
    ASSERT_TRUE(fm::normalizeRow(c));
    EXPECT_EQ(c.coeffs, (std::vector<int64_t>{1, -5}));
}

TEST(FmEngine, ConstantRowsDecideFeasibility)
{
    Constraint ok = ineq({0, 3});
    EXPECT_TRUE(fm::normalizeRow(ok));
    Constraint bad = ineq({0, -1});
    EXPECT_FALSE(fm::normalizeRow(bad));
    Constraint eq_bad = eq({0, 2});
    EXPECT_FALSE(fm::normalizeRow(eq_bad));
}

TEST(FmEngine, SimplifyMergesOppositeInequalitiesIntoEquality)
{
    std::vector<Constraint> rows{ineq({1, -3}), ineq({-1, 3})};
    ASSERT_TRUE(fm::simplifyRows(rows));
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_TRUE(rows[0].isEq);
}

TEST(FmEngine, SimplifyDetectsEmptyWindow)
{
    // x >= 4 and x <= 3.
    std::vector<Constraint> rows{ineq({1, -4}), ineq({-1, 3})};
    EXPECT_FALSE(fm::simplifyRows(rows));
}

TEST(FmEngine, SimplifyKeepsTightestParallelBound)
{
    std::vector<Constraint> rows{ineq({1, -2}), ineq({1, -7})};
    ASSERT_TRUE(fm::simplifyRows(rows));
    ASSERT_EQ(rows.size(), 1u);
    // x >= 7 is tighter than x >= 2: constant -7 survives.
    EXPECT_EQ(rows[0].coeffs.back(), -7);
}

TEST(FmEngine, UnitEqualityEliminationIsExact)
{
    // x == y + 1, 0 <= y <= 4; eliminate x (col 0) from x - 2y >= 0.
    std::vector<Constraint> rows{
        eq({1, -1, -1}),   // x - y - 1 == 0
        ineq({1, -2, 0}),  // x - 2y >= 0
        ineq({0, 1, 0}),   // y >= 0
        ineq({0, -1, 4}),  // y <= 4
    };
    bool exact = true;
    ASSERT_TRUE(fm::eliminateCol(rows, 0, exact));
    EXPECT_TRUE(exact);
    // Substitution yields -y + 1 >= 0 -> y <= 1.
    bool found = false;
    for (const auto &r : rows)
        if (!r.isEq && r.coeffs == std::vector<int64_t>{-1, 1})
            found = true;
    EXPECT_TRUE(found);
}

TEST(FmEngine, NonUnitEliminationFlagsInexact)
{
    // 2x - y <= 7 and 3x + y >= 5: multi-variable rows keep their
    // non-unit x coefficients through normalization, so eliminating
    // x pairs coefficients 2 and 3 (real shadow only).
    std::vector<Constraint> rows{ineq({-2, 1, 7}), ineq({3, 1, -5})};
    bool exact = true;
    ASSERT_TRUE(fm::eliminateCol(rows, 0, exact));
    EXPECT_FALSE(exact);
}

TEST(FmEngine, GcdTighteningMakesSingleVariableRowsExact)
{
    // 2x <= 7 and 3x >= 5 normalize to x <= 3 and x >= 2 before the
    // pairing, so this elimination stays integer-exact.
    std::vector<Constraint> rows{ineq({-2, 7}), ineq({3, -5})};
    bool exact = true;
    ASSERT_TRUE(fm::eliminateCol(rows, 0, exact));
    EXPECT_TRUE(exact);
}

TEST(FmEngine, OneSidedBoundsEliminateExactly)
{
    // Only lower bounds on x: projection drops them.
    std::vector<Constraint> rows{ineq({1, -1, 0}), ineq({0, 1, -2})};
    bool exact = true;
    ASSERT_TRUE(fm::eliminateCol(rows, 0, exact));
    EXPECT_TRUE(exact);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].coeffs, (std::vector<int64_t>{1, -2}));
}

TEST(FmEngine, SubstituteColFoldsConstants)
{
    std::vector<Constraint> rows{ineq({1, 1, 0})}; // x + y >= 0
    ASSERT_TRUE(fm::substituteCol(rows, 0, -3));
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].coeffs, (std::vector<int64_t>{1, -3}));

    std::vector<Constraint> rows2{ineq({0, 1, 5})};
    EXPECT_TRUE(fm::colUnused(rows2, 0));
    EXPECT_FALSE(fm::colUnused(rows2, 1));
}

TEST(SimpleHull, CoversUnionAndKeepsSharedBounds)
{
    // Two overlapping windows of S[i] -> A[a].
    Map m = parseMap("{ S[i] -> A[a] : 4i <= a < 4i + 4 and "
                     "0 <= i < 8; "
                     "S[i] -> A[a] : 4i + 2 <= a < 4i + 6 and "
                     "0 <= i < 8 }");
    ASSERT_EQ(m.pieces().size(), 2u);
    BasicMap hull = m.simpleHull();
    // Hull at i = 1: a in [4, 9].
    auto pts = hull.fixInDim(0, 1).range().enumerate({});
    ASSERT_EQ(pts.size(), 6u);
    EXPECT_EQ(pts.front()[0], 4);
    EXPECT_EQ(pts.back()[0], 9);
    // Domain bound (shared by both pieces) survives in the hull.
    EXPECT_TRUE(hull.fixInDim(0, 8).isEmpty());
}

TEST(SimpleHull, SinglePieceIsIdentity)
{
    Map m = parseMap("{ S[i] -> A[i] : 0 <= i < 4 }");
    EXPECT_TRUE(m.simpleHull() == m.pieces()[0]);
}

TEST(SimpleHull, MixedTuplesPanic)
{
    Map m = parseMap("{ S[i] -> A[i] : 0 <= i < 4 }")
                .unite(parseMap("{ S[i] -> B[i] : 0 <= i < 4 }"));
    EXPECT_THROW(m.simpleHull(), PanicError);
}

} // namespace
} // namespace pres
} // namespace polyfuse
