file(REMOVE_RECURSE
  "CMakeFiles/pf_exec.dir/executor.cc.o"
  "CMakeFiles/pf_exec.dir/executor.cc.o.d"
  "libpf_exec.a"
  "libpf_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
