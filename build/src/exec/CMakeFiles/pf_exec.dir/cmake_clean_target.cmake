file(REMOVE_RECURSE
  "libpf_exec.a"
)
