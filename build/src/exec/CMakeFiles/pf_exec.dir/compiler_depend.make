# Empty compiler generated dependencies file for pf_exec.
# This may be replaced when dependencies are built.
