file(REMOVE_RECURSE
  "libpf_ir.a"
)
