file(REMOVE_RECURSE
  "CMakeFiles/pf_ir.dir/program.cc.o"
  "CMakeFiles/pf_ir.dir/program.cc.o.d"
  "libpf_ir.a"
  "libpf_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
