# Empty compiler generated dependencies file for pf_ir.
# This may be replaced when dependencies are built.
