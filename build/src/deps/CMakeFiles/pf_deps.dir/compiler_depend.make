# Empty compiler generated dependencies file for pf_deps.
# This may be replaced when dependencies are built.
