file(REMOVE_RECURSE
  "CMakeFiles/pf_deps.dir/dependences.cc.o"
  "CMakeFiles/pf_deps.dir/dependences.cc.o.d"
  "libpf_deps.a"
  "libpf_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
