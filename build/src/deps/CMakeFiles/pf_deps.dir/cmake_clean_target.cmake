file(REMOVE_RECURSE
  "libpf_deps.a"
)
