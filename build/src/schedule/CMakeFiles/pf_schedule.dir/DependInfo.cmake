
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/fusion.cc" "src/schedule/CMakeFiles/pf_schedule.dir/fusion.cc.o" "gcc" "src/schedule/CMakeFiles/pf_schedule.dir/fusion.cc.o.d"
  "/root/repo/src/schedule/tree.cc" "src/schedule/CMakeFiles/pf_schedule.dir/tree.cc.o" "gcc" "src/schedule/CMakeFiles/pf_schedule.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deps/CMakeFiles/pf_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/pres/CMakeFiles/pf_pres.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
