file(REMOVE_RECURSE
  "CMakeFiles/pf_schedule.dir/fusion.cc.o"
  "CMakeFiles/pf_schedule.dir/fusion.cc.o.d"
  "CMakeFiles/pf_schedule.dir/tree.cc.o"
  "CMakeFiles/pf_schedule.dir/tree.cc.o.d"
  "libpf_schedule.a"
  "libpf_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
