file(REMOVE_RECURSE
  "libpf_schedule.a"
)
