# Empty dependencies file for pf_schedule.
# This may be replaced when dependencies are built.
