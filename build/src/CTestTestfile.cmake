# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("pres")
subdirs("ir")
subdirs("deps")
subdirs("schedule")
subdirs("core")
subdirs("codegen")
subdirs("exec")
subdirs("memsim")
subdirs("perfmodel")
subdirs("workloads")
