# Empty compiler generated dependencies file for pf_workloads.
# This may be replaced when dependencies are built.
