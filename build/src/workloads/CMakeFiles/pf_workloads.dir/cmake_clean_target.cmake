file(REMOVE_RECURSE
  "libpf_workloads.a"
)
