
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bilateral.cc" "src/workloads/CMakeFiles/pf_workloads.dir/bilateral.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/bilateral.cc.o.d"
  "/root/repo/src/workloads/camera.cc" "src/workloads/CMakeFiles/pf_workloads.dir/camera.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/camera.cc.o.d"
  "/root/repo/src/workloads/conv2d.cc" "src/workloads/CMakeFiles/pf_workloads.dir/conv2d.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/conv2d.cc.o.d"
  "/root/repo/src/workloads/equake.cc" "src/workloads/CMakeFiles/pf_workloads.dir/equake.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/equake.cc.o.d"
  "/root/repo/src/workloads/harris.cc" "src/workloads/CMakeFiles/pf_workloads.dir/harris.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/harris.cc.o.d"
  "/root/repo/src/workloads/interpolate.cc" "src/workloads/CMakeFiles/pf_workloads.dir/interpolate.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/interpolate.cc.o.d"
  "/root/repo/src/workloads/laplacian.cc" "src/workloads/CMakeFiles/pf_workloads.dir/laplacian.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/laplacian.cc.o.d"
  "/root/repo/src/workloads/polybench.cc" "src/workloads/CMakeFiles/pf_workloads.dir/polybench.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/polybench.cc.o.d"
  "/root/repo/src/workloads/resnet50.cc" "src/workloads/CMakeFiles/pf_workloads.dir/resnet50.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/resnet50.cc.o.d"
  "/root/repo/src/workloads/unsharp.cc" "src/workloads/CMakeFiles/pf_workloads.dir/unsharp.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/unsharp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/pf_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pf_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/pf_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/pf_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/pf_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/pres/CMakeFiles/pf_pres.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
