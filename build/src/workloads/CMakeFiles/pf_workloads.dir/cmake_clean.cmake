file(REMOVE_RECURSE
  "CMakeFiles/pf_workloads.dir/bilateral.cc.o"
  "CMakeFiles/pf_workloads.dir/bilateral.cc.o.d"
  "CMakeFiles/pf_workloads.dir/camera.cc.o"
  "CMakeFiles/pf_workloads.dir/camera.cc.o.d"
  "CMakeFiles/pf_workloads.dir/conv2d.cc.o"
  "CMakeFiles/pf_workloads.dir/conv2d.cc.o.d"
  "CMakeFiles/pf_workloads.dir/equake.cc.o"
  "CMakeFiles/pf_workloads.dir/equake.cc.o.d"
  "CMakeFiles/pf_workloads.dir/harris.cc.o"
  "CMakeFiles/pf_workloads.dir/harris.cc.o.d"
  "CMakeFiles/pf_workloads.dir/interpolate.cc.o"
  "CMakeFiles/pf_workloads.dir/interpolate.cc.o.d"
  "CMakeFiles/pf_workloads.dir/laplacian.cc.o"
  "CMakeFiles/pf_workloads.dir/laplacian.cc.o.d"
  "CMakeFiles/pf_workloads.dir/polybench.cc.o"
  "CMakeFiles/pf_workloads.dir/polybench.cc.o.d"
  "CMakeFiles/pf_workloads.dir/resnet50.cc.o"
  "CMakeFiles/pf_workloads.dir/resnet50.cc.o.d"
  "CMakeFiles/pf_workloads.dir/unsharp.cc.o"
  "CMakeFiles/pf_workloads.dir/unsharp.cc.o.d"
  "libpf_workloads.a"
  "libpf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
