file(REMOVE_RECURSE
  "CMakeFiles/pf_perfmodel.dir/autotune.cc.o"
  "CMakeFiles/pf_perfmodel.dir/autotune.cc.o.d"
  "CMakeFiles/pf_perfmodel.dir/parallel.cc.o"
  "CMakeFiles/pf_perfmodel.dir/parallel.cc.o.d"
  "libpf_perfmodel.a"
  "libpf_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
