# Empty compiler generated dependencies file for pf_perfmodel.
# This may be replaced when dependencies are built.
