file(REMOVE_RECURSE
  "libpf_perfmodel.a"
)
