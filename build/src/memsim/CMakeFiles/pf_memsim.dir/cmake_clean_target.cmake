file(REMOVE_RECURSE
  "libpf_memsim.a"
)
