# Empty dependencies file for pf_memsim.
# This may be replaced when dependencies are built.
