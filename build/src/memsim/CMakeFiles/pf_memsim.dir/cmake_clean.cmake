file(REMOVE_RECURSE
  "CMakeFiles/pf_memsim.dir/cache.cc.o"
  "CMakeFiles/pf_memsim.dir/cache.cc.o.d"
  "CMakeFiles/pf_memsim.dir/davinci.cc.o"
  "CMakeFiles/pf_memsim.dir/davinci.cc.o.d"
  "CMakeFiles/pf_memsim.dir/gpu.cc.o"
  "CMakeFiles/pf_memsim.dir/gpu.cc.o.d"
  "libpf_memsim.a"
  "libpf_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
