
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/cache.cc" "src/memsim/CMakeFiles/pf_memsim.dir/cache.cc.o" "gcc" "src/memsim/CMakeFiles/pf_memsim.dir/cache.cc.o.d"
  "/root/repo/src/memsim/davinci.cc" "src/memsim/CMakeFiles/pf_memsim.dir/davinci.cc.o" "gcc" "src/memsim/CMakeFiles/pf_memsim.dir/davinci.cc.o.d"
  "/root/repo/src/memsim/gpu.cc" "src/memsim/CMakeFiles/pf_memsim.dir/gpu.cc.o" "gcc" "src/memsim/CMakeFiles/pf_memsim.dir/gpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/pf_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/pf_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/pf_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/pf_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/pres/CMakeFiles/pf_pres.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
