
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compose.cc" "src/core/CMakeFiles/pf_core.dir/compose.cc.o" "gcc" "src/core/CMakeFiles/pf_core.dir/compose.cc.o.d"
  "/root/repo/src/core/footprint.cc" "src/core/CMakeFiles/pf_core.dir/footprint.cc.o" "gcc" "src/core/CMakeFiles/pf_core.dir/footprint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/pf_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/pf_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/pres/CMakeFiles/pf_pres.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
