file(REMOVE_RECURSE
  "CMakeFiles/pf_core.dir/compose.cc.o"
  "CMakeFiles/pf_core.dir/compose.cc.o.d"
  "CMakeFiles/pf_core.dir/footprint.cc.o"
  "CMakeFiles/pf_core.dir/footprint.cc.o.d"
  "libpf_core.a"
  "libpf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
