file(REMOVE_RECURSE
  "CMakeFiles/pf_pres.dir/basic_map.cc.o"
  "CMakeFiles/pf_pres.dir/basic_map.cc.o.d"
  "CMakeFiles/pf_pres.dir/basic_set.cc.o"
  "CMakeFiles/pf_pres.dir/basic_set.cc.o.d"
  "CMakeFiles/pf_pres.dir/fm.cc.o"
  "CMakeFiles/pf_pres.dir/fm.cc.o.d"
  "CMakeFiles/pf_pres.dir/map.cc.o"
  "CMakeFiles/pf_pres.dir/map.cc.o.d"
  "CMakeFiles/pf_pres.dir/parser.cc.o"
  "CMakeFiles/pf_pres.dir/parser.cc.o.d"
  "CMakeFiles/pf_pres.dir/printing.cc.o"
  "CMakeFiles/pf_pres.dir/printing.cc.o.d"
  "CMakeFiles/pf_pres.dir/set.cc.o"
  "CMakeFiles/pf_pres.dir/set.cc.o.d"
  "CMakeFiles/pf_pres.dir/space.cc.o"
  "CMakeFiles/pf_pres.dir/space.cc.o.d"
  "libpf_pres.a"
  "libpf_pres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_pres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
