# Empty compiler generated dependencies file for pf_pres.
# This may be replaced when dependencies are built.
