
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pres/basic_map.cc" "src/pres/CMakeFiles/pf_pres.dir/basic_map.cc.o" "gcc" "src/pres/CMakeFiles/pf_pres.dir/basic_map.cc.o.d"
  "/root/repo/src/pres/basic_set.cc" "src/pres/CMakeFiles/pf_pres.dir/basic_set.cc.o" "gcc" "src/pres/CMakeFiles/pf_pres.dir/basic_set.cc.o.d"
  "/root/repo/src/pres/fm.cc" "src/pres/CMakeFiles/pf_pres.dir/fm.cc.o" "gcc" "src/pres/CMakeFiles/pf_pres.dir/fm.cc.o.d"
  "/root/repo/src/pres/map.cc" "src/pres/CMakeFiles/pf_pres.dir/map.cc.o" "gcc" "src/pres/CMakeFiles/pf_pres.dir/map.cc.o.d"
  "/root/repo/src/pres/parser.cc" "src/pres/CMakeFiles/pf_pres.dir/parser.cc.o" "gcc" "src/pres/CMakeFiles/pf_pres.dir/parser.cc.o.d"
  "/root/repo/src/pres/printing.cc" "src/pres/CMakeFiles/pf_pres.dir/printing.cc.o" "gcc" "src/pres/CMakeFiles/pf_pres.dir/printing.cc.o.d"
  "/root/repo/src/pres/set.cc" "src/pres/CMakeFiles/pf_pres.dir/set.cc.o" "gcc" "src/pres/CMakeFiles/pf_pres.dir/set.cc.o.d"
  "/root/repo/src/pres/space.cc" "src/pres/CMakeFiles/pf_pres.dir/space.cc.o" "gcc" "src/pres/CMakeFiles/pf_pres.dir/space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
