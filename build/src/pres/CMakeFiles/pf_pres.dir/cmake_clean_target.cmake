file(REMOVE_RECURSE
  "libpf_pres.a"
)
