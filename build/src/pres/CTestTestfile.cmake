# CMake generated Testfile for 
# Source directory: /root/repo/src/pres
# Build directory: /root/repo/build/src/pres
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
