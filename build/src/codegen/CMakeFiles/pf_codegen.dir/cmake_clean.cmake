file(REMOVE_RECURSE
  "CMakeFiles/pf_codegen.dir/cprinter.cc.o"
  "CMakeFiles/pf_codegen.dir/cprinter.cc.o.d"
  "CMakeFiles/pf_codegen.dir/generate.cc.o"
  "CMakeFiles/pf_codegen.dir/generate.cc.o.d"
  "libpf_codegen.a"
  "libpf_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
