# Empty dependencies file for pf_codegen.
# This may be replaced when dependencies are built.
