file(REMOVE_RECURSE
  "libpf_codegen.a"
)
