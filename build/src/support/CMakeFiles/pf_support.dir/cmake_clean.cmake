file(REMOVE_RECURSE
  "CMakeFiles/pf_support.dir/logging.cc.o"
  "CMakeFiles/pf_support.dir/logging.cc.o.d"
  "CMakeFiles/pf_support.dir/strutil.cc.o"
  "CMakeFiles/pf_support.dir/strutil.cc.o.d"
  "libpf_support.a"
  "libpf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
