file(REMOVE_RECURSE
  "libpf_support.a"
)
