# Empty dependencies file for pf_support.
# This may be replaced when dependencies are built.
