# Empty compiler generated dependencies file for test_pres_ops.
# This may be replaced when dependencies are built.
