file(REMOVE_RECURSE
  "CMakeFiles/test_pres_ops.dir/test_pres_ops.cc.o"
  "CMakeFiles/test_pres_ops.dir/test_pres_ops.cc.o.d"
  "test_pres_ops"
  "test_pres_ops.pdb"
  "test_pres_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pres_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
