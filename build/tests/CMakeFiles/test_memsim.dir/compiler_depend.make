# Empty compiler generated dependencies file for test_memsim.
# This may be replaced when dependencies are built.
