# Empty compiler generated dependencies file for test_autotune.
# This may be replaced when dependencies are built.
