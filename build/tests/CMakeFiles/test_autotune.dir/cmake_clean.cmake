file(REMOVE_RECURSE
  "CMakeFiles/test_autotune.dir/test_autotune.cc.o"
  "CMakeFiles/test_autotune.dir/test_autotune.cc.o.d"
  "test_autotune"
  "test_autotune.pdb"
  "test_autotune[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
