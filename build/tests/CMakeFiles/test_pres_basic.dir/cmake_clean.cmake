file(REMOVE_RECURSE
  "CMakeFiles/test_pres_basic.dir/test_pres_basic.cc.o"
  "CMakeFiles/test_pres_basic.dir/test_pres_basic.cc.o.d"
  "test_pres_basic"
  "test_pres_basic.pdb"
  "test_pres_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pres_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
