# Empty compiler generated dependencies file for test_pres_basic.
# This may be replaced when dependencies are built.
