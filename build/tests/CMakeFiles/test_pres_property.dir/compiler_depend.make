# Empty compiler generated dependencies file for test_pres_property.
# This may be replaced when dependencies are built.
