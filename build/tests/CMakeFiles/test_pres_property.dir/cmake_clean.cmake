file(REMOVE_RECURSE
  "CMakeFiles/test_pres_property.dir/test_pres_property.cc.o"
  "CMakeFiles/test_pres_property.dir/test_pres_property.cc.o.d"
  "test_pres_property"
  "test_pres_property.pdb"
  "test_pres_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pres_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
