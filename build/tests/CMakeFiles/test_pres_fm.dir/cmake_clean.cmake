file(REMOVE_RECURSE
  "CMakeFiles/test_pres_fm.dir/test_pres_fm.cc.o"
  "CMakeFiles/test_pres_fm.dir/test_pres_fm.cc.o.d"
  "test_pres_fm"
  "test_pres_fm.pdb"
  "test_pres_fm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pres_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
