# Empty compiler generated dependencies file for test_pres_fm.
# This may be replaced when dependencies are built.
