# Empty dependencies file for test_compose_options.
# This may be replaced when dependencies are built.
