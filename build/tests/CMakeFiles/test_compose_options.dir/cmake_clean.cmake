file(REMOVE_RECURSE
  "CMakeFiles/test_compose_options.dir/test_compose_options.cc.o"
  "CMakeFiles/test_compose_options.dir/test_compose_options.cc.o.d"
  "test_compose_options"
  "test_compose_options.pdb"
  "test_compose_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compose_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
