# Empty compiler generated dependencies file for test_deps.
# This may be replaced when dependencies are built.
