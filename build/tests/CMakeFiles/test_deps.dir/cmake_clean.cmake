file(REMOVE_RECURSE
  "CMakeFiles/test_deps.dir/test_deps.cc.o"
  "CMakeFiles/test_deps.dir/test_deps.cc.o.d"
  "test_deps"
  "test_deps.pdb"
  "test_deps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
