# Empty compiler generated dependencies file for test_codegen.
# This may be replaced when dependencies are built.
