# Empty dependencies file for test_pres_parser.
# This may be replaced when dependencies are built.
