file(REMOVE_RECURSE
  "CMakeFiles/test_pres_parser.dir/test_pres_parser.cc.o"
  "CMakeFiles/test_pres_parser.dir/test_pres_parser.cc.o.d"
  "test_pres_parser"
  "test_pres_parser.pdb"
  "test_pres_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pres_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
