# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_pres_basic[1]_include.cmake")
include("/root/repo/build/tests/test_pres_ops[1]_include.cmake")
include("/root/repo/build/tests/test_pres_property[1]_include.cmake")
include("/root/repo/build/tests/test_pres_parser[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_deps[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_compose[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_memsim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_compose_options[1]_include.cmake")
include("/root/repo/build/tests/test_pres_fm[1]_include.cmake")
include("/root/repo/build/tests/test_multilevel[1]_include.cmake")
include("/root/repo/build/tests/test_autotune[1]_include.cmake")
