file(REMOVE_RECURSE
  "CMakeFiles/accelerator_conv.dir/accelerator_conv.cpp.o"
  "CMakeFiles/accelerator_conv.dir/accelerator_conv.cpp.o.d"
  "accelerator_conv"
  "accelerator_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
