# Empty dependencies file for accelerator_conv.
# This may be replaced when dependencies are built.
