# Empty dependencies file for sparse_equake.
# This may be replaced when dependencies are built.
