file(REMOVE_RECURSE
  "CMakeFiles/sparse_equake.dir/sparse_equake.cpp.o"
  "CMakeFiles/sparse_equake.dir/sparse_equake.cpp.o.d"
  "sparse_equake"
  "sparse_equake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_equake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
