# Empty compiler generated dependencies file for bench_fig10_gpu.
# This may be replaced when dependencies are built.
