file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gpu.dir/bench_fig10_gpu.cc.o"
  "CMakeFiles/bench_fig10_gpu.dir/bench_fig10_gpu.cc.o.d"
  "bench_fig10_gpu"
  "bench_fig10_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
