file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_equake.dir/bench_fig9_equake.cc.o"
  "CMakeFiles/bench_fig9_equake.dir/bench_fig9_equake.cc.o.d"
  "bench_fig9_equake"
  "bench_fig9_equake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_equake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
