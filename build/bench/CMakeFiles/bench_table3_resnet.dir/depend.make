# Empty dependencies file for bench_table3_resnet.
# This may be replaced when dependencies are built.
