file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_resnet.dir/bench_table3_resnet.cc.o"
  "CMakeFiles/bench_table3_resnet.dir/bench_table3_resnet.cc.o.d"
  "bench_table3_resnet"
  "bench_table3_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
