# Empty dependencies file for bench_fig8_scaling.
# This may be replaced when dependencies are built.
