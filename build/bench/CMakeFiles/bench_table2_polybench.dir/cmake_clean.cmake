file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_polybench.dir/bench_table2_polybench.cc.o"
  "CMakeFiles/bench_table2_polybench.dir/bench_table2_polybench.cc.o.d"
  "bench_table2_polybench"
  "bench_table2_polybench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_polybench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
