file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cpu.dir/bench_table1_cpu.cc.o"
  "CMakeFiles/bench_table1_cpu.dir/bench_table1_cpu.cc.o.d"
  "bench_table1_cpu"
  "bench_table1_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
