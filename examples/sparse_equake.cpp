/**
 * @file
 * Domain example: the equake finite-element kernel (sparse 3D SpMV
 * plus element-wise updates), every strategy compiled through the
 * driver pipeline. Demonstrates the paper's "fusion without tiling"
 * fallback: when the live-out space is not tilable enough,
 * Algorithm 1 still fuses the producers through an extension
 * schedule, and the dynamic-length while loop needs no manual
 * permutation (Sec. VI-A).
 *
 *   ./examples/sparse_equake
 */

#include <cstdio>

#include "driver/pipeline.hh"
#include "exec/executor.hh"
#include "workloads/equake.hh"

using namespace polyfuse;

int
main()
{
    ir::Program p = workloads::makeEquake({4096, 16});

    auto compile = [&](driver::Strategy strategy) {
        driver::PipelineOptions opts;
        opts.strategy = strategy;
        opts.tileSizes = {512};
        return driver::Pipeline(opts).run(p);
    };
    auto runIt = [&](const codegen::AstPtr &ast) {
        exec::Buffers buf(p);
        workloads::initEquakeInputs(p, buf, 11);
        auto stats = exec::run(p, ast, buf);
        return std::make_pair(stats, buf.data(p.tensorId("Out")));
    };

    // Baselines.
    for (auto strategy :
         {driver::Strategy::MinFuse, driver::Strategy::MaxFuse}) {
        auto state = compile(strategy);
        auto [stats, out] = runIt(state.ast);
        std::printf("%-10s clusters=%zu  instances=%llu  wall=%.2f "
                    "ms\n",
                    driver::strategyName(strategy),
                    state.fusion.clusters.size(),
                    (unsigned long long)stats.instances,
                    stats.seconds * 1e3);
    }

    // Our composition with per-chunk tiling of the outer loop.
    auto ours = compile(driver::Strategy::Ours);
    std::printf("ours: %zu spaces; fused:",
                ours.composed.spaces.size());
    for (const auto &s : ours.composed.fusedIntermediates)
        std::printf(" %s", s.c_str());
    std::printf("\n");
    auto [stats, out] = runIt(ours.ast);
    std::printf("ours       wall=%.2f ms  instances=%llu\n",
                stats.seconds * 1e3,
                (unsigned long long)stats.instances);

    // Verify against minfuse.
    auto [mstats, mout] = runIt(compile(driver::Strategy::MinFuse).ast);
    (void)mstats;
    double max_err = 0;
    for (size_t i = 0; i < out.size(); ++i)
        max_err = std::max(max_err,
                           out[i] > mout[i] ? out[i] - mout[i]
                                            : mout[i] - out[i]);
    std::printf("max |ours - minfuse| = %g\n", max_err);
    return max_err < 1e-9 ? 0 : 1;
}
