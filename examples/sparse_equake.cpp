/**
 * @file
 * Domain example: the equake finite-element kernel (sparse 3D SpMV
 * plus element-wise updates). Demonstrates the paper's "fusion
 * without tiling" fallback: when the live-out space is not tilable
 * enough, Algorithm 1 still fuses the producers through an
 * extension schedule, and the dynamic-length while loop needs no
 * manual permutation (Sec. VI-A).
 *
 *   ./examples/sparse_equake
 */

#include <cstdio>

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "exec/executor.hh"
#include "schedule/fusion.hh"
#include "workloads/equake.hh"

using namespace polyfuse;

int
main()
{
    ir::Program p = workloads::makeEquake({4096, 16});
    auto graph = deps::DependenceGraph::compute(p);

    auto runIt = [&](const schedule::ScheduleTree &tree) {
        exec::Buffers buf(p);
        workloads::initEquakeInputs(p, buf, 11);
        auto stats = exec::run(p, codegen::generateAst(tree), buf);
        return std::make_pair(stats, buf.data(p.tensorId("Out")));
    };

    // Baselines.
    for (auto policy :
         {schedule::FusionPolicy::Min, schedule::FusionPolicy::Max}) {
        auto r = schedule::applyFusion(p, graph, policy);
        auto [stats, out] = runIt(r.tree);
        std::printf("%-10s clusters=%zu  instances=%llu  wall=%.2f "
                    "ms\n",
                    fusionPolicyName(policy).c_str(),
                    r.clusters.size(),
                    (unsigned long long)stats.instances,
                    stats.seconds * 1e3);
    }

    // Our composition with per-chunk tiling of the outer loop.
    core::ComposeOptions opts;
    opts.tileSizes = {512};
    auto ours = core::compose(p, graph, opts);
    std::printf("ours: %zu spaces; fused:", ours.spaces.size());
    for (const auto &s : ours.fusedIntermediates)
        std::printf(" %s", s.c_str());
    std::printf("\n");
    auto [stats, out] = runIt(ours.tree);
    std::printf("ours       wall=%.2f ms  instances=%llu\n",
                stats.seconds * 1e3,
                (unsigned long long)stats.instances);

    // Verify against minfuse.
    auto minr = schedule::applyFusion(p, graph,
                                      schedule::FusionPolicy::Min);
    auto [mstats, mout] = runIt(minr.tree);
    (void)mstats;
    double max_err = 0;
    for (size_t i = 0; i < out.size(); ++i)
        max_err = std::max(max_err,
                           out[i] > mout[i] ? out[i] - mout[i]
                                            : mout[i] - out[i]);
    std::printf("max |ours - minfuse| = %g\n", max_err);
    return max_err < 1e-9 ? 0 : 1;
}
