/**
 * @file
 * Domain example: deploying a conv + batchnorm layer on the
 * DaVinci-like accelerator model (Sec. V-A) through the driver
 * pipeline. Shows the fusion decision of the composition on the
 * layer's polyhedral program, the CUDA-flavoured code (grid mapping
 * annotations), the per-pass compile report, and the per-layer
 * cost-model comparison of separated versus post-tiling-fused
 * execution over several ResNet-50 layers.
 *
 *   ./examples/accelerator_conv
 */

#include <cstdio>

#include "codegen/cprinter.hh"
#include "driver/pipeline.hh"
#include "memsim/davinci.hh"
#include "workloads/resnet50.hh"

using namespace polyfuse;

int
main()
{
    // The layer program: init + reduction (Cube Unit) feeding a
    // pointwise batchnorm (Vector Unit).
    memsim::ConvLayer layer;
    layer.cin = 64;
    layer.cout = 64;
    layer.height = 18;
    layer.width = 18;
    layer.kernel = 3;
    ir::Program p = workloads::makeConvBnProgram(layer);

    driver::PipelineOptions opts;
    opts.strategy = driver::Strategy::Ours;
    opts.tileSizes = {16, 8, 8};
    opts.startup = schedule::FusionPolicy::Min;
    auto state = driver::Pipeline(opts).run(p);
    std::printf("conv+bn fused into %zu computation space(s); "
                "intermediates kept in the Unified Buffer: %zu\n\n",
                state.composed.spaces.size(),
                state.composed.fusedIntermediates.size());
    std::printf("--- composed schedule tree ---\n%s\n",
                state.tree.str().c_str());
    std::printf("--- accelerator-flavoured code ---\n%s\n",
                codegen::printCode(p, state.ast,
                                   codegen::PrintStyle::Cuda)
                    .c_str());
    std::printf("--- pass pipeline ---\n%s\n",
                state.stats.str().c_str());

    // Cost-model sweep over a few representative ResNet-50 layers.
    auto layers = workloads::resnet50Layers();
    std::printf("layer (cin->cout, size, k)   separated(ms)  "
                "fused(ms)  speedup  GM saved(MB)\n");
    for (size_t i : {size_t(0), size_t(2), size_t(15), size_t(30),
                     size_t(50)}) {
        const auto &l = layers[i];
        auto u = memsim::estimateConvBn(l, false);
        auto f = memsim::estimateConvBn(l, true);
        std::printf("%4lld->%-4lld %3lldx%-3lld k=%lld      "
                    "%10.3f %10.3f %7.2fx %10.2f\n",
                    (long long)l.cin, (long long)l.cout,
                    (long long)l.height, (long long)l.width,
                    (long long)l.kernel, u.totalMs, f.totalMs,
                    u.totalMs / f.totalMs,
                    (u.gmBytes - f.gmBytes) / 1e6);
    }
    return 0;
}
