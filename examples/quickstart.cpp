/**
 * @file
 * Quickstart: the paper's running example end to end.
 *
 * Builds the Fig. 1(a) convolution, shows the initial and composed
 * schedule trees, the extension schedule of eq. (6), the generated
 * OpenMP-style code of Fig. 5, and finally executes both schedules
 * and verifies they agree.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "codegen/cprinter.hh"
#include "codegen/generate.hh"
#include "core/compose.hh"
#include "exec/executor.hh"
#include "workloads/conv2d.hh"

using namespace polyfuse;

int
main()
{
    // 1. The program: quantization, init, reduction, ReLU (Fig. 1a).
    ir::Program prog = workloads::makeConv2D({64, 64, 3, 3});
    std::printf("program '%s': %zu statements in %u loop nests\n\n",
                prog.name().c_str(), prog.statements().size(),
                prog.numGroups());

    // 2. Dependences and the initial schedule tree (Fig. 2a).
    auto graph = deps::DependenceGraph::compute(prog);
    auto initial = schedule::ScheduleTree::initial(prog);
    initial.annotate(graph);
    std::printf("--- initial schedule tree ---\n%s\n",
                initial.str().c_str());

    // 3. The paper's composition: tile the live-out space, derive
    //    the intermediate tile shapes from upwards exposed data,
    //    fuse post-tiling (Algorithms 1-3).
    core::ComposeOptions opts;
    opts.tileSizes = {16, 16};
    auto result = core::compose(prog, graph, opts);

    std::printf("--- composed schedule tree (Fig. 5) ---\n%s\n",
                result.tree.str().c_str());
    for (const auto &[stmt, ext] : result.extensionSchedules)
        std::printf("extension schedule (eq. 6) for %s:\n  %s\n\n",
                    stmt.c_str(), ext.str().c_str());

    // 4. Generated code.
    auto ast = codegen::generateAst(result.tree);
    std::printf("--- generated OpenMP code ---\n%s\n",
                codegen::printCode(prog, ast).c_str());

    // 5. Execute both schedules and compare the outputs.
    auto runIt = [&](const schedule::ScheduleTree &tree) {
        exec::Buffers buf(prog);
        buf.fillPattern(prog.tensorId("A"), 7);
        buf.fillPattern(prog.tensorId("B"), 13);
        exec::run(prog, codegen::generateAst(tree), buf);
        return buf.data(prog.tensorId("C"));
    };
    auto ref = runIt(initial);
    auto got = runIt(result.tree);
    std::printf("outputs %s (%zu elements)\n",
                ref == got ? "MATCH" : "DIFFER", ref.size());
    return ref == got ? 0 : 1;
}
