/**
 * @file
 * Quickstart: the paper's running example end to end, compiled
 * through the driver's pass pipeline.
 *
 * Builds the Fig. 1(a) convolution, shows the initial and composed
 * schedule trees, the extension schedule of eq. (6), the generated
 * OpenMP-style code of Fig. 5 with the per-pass compile report, and
 * finally executes both schedules and verifies they agree.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "codegen/cprinter.hh"
#include "driver/pipeline.hh"
#include "exec/executor.hh"
#include "workloads/conv2d.hh"

using namespace polyfuse;

int
main()
{
    // 1. The program: quantization, init, reduction, ReLU (Fig. 1a).
    ir::Program prog = workloads::makeConv2D({64, 64, 3, 3});
    std::printf("program '%s': %zu statements in %u loop nests\n\n",
                prog.name().c_str(), prog.statements().size(),
                prog.numGroups());

    // 2. The naive pipeline run: dependence analysis plus the
    //    initial schedule tree (Fig. 2a).
    driver::PipelineOptions naive;
    naive.strategy = driver::Strategy::Naive;
    auto initial = driver::Pipeline(naive).run(prog);
    std::printf("--- initial schedule tree ---\n%s\n",
                initial.tree.str().c_str());

    // 3. The paper's composition: tile the live-out space, derive
    //    the intermediate tile shapes from upwards exposed data,
    //    fuse post-tiling (Algorithms 1-3).
    driver::PipelineOptions ours;
    ours.strategy = driver::Strategy::Ours;
    ours.tileSizes = {16, 16};
    auto composed = driver::Pipeline(ours).run(prog);

    std::printf("--- composed schedule tree (Fig. 5) ---\n%s\n",
                composed.tree.str().c_str());
    for (const auto &[stmt, ext] :
         composed.composed.extensionSchedules)
        std::printf("extension schedule (eq. 6) for %s:\n  %s\n\n",
                    stmt.c_str(), ext.str().c_str());

    // 4. Generated code and the per-pass compile report.
    std::printf("--- generated OpenMP code ---\n%s\n",
                codegen::printCode(prog, composed.ast).c_str());
    std::printf("--- pass pipeline ---\n%s\n",
                composed.stats.str().c_str());

    // 5. Execute both schedules and compare the outputs.
    auto runIt = [&](const codegen::AstPtr &ast) {
        exec::Buffers buf(prog);
        buf.fillPattern(prog.tensorId("A"), 7);
        buf.fillPattern(prog.tensorId("B"), 13);
        exec::run(prog, ast, buf);
        return buf.data(prog.tensorId("C"));
    };
    auto ref = runIt(initial.ast);
    auto got = runIt(composed.ast);
    std::printf("outputs %s (%zu elements)\n",
                ref == got ? "MATCH" : "DIFFER", ref.size());
    return ref == got ? 0 : 1;
}
