/**
 * @file
 * Domain example: optimizing an image-processing pipeline (Harris
 * corner detection, 11 stages) with every strategy the paper
 * compares, each compiled through the driver's pass pipeline, and
 * measuring the memory-hierarchy effect with the cache simulator.
 * Prints the fusion decisions, per-strategy simulated DRAM traffic
 * and the modeled 32-thread time.
 *
 *   ./examples/image_pipeline [rows cols]
 */

#include <cstdio>
#include <cstdlib>

#include "driver/pipeline.hh"
#include "exec/executor.hh"
#include "memsim/cache.hh"
#include "perfmodel/parallel.hh"
#include "workloads/pipelines.hh"

using namespace polyfuse;

namespace {

void
report(const ir::Program &p, const char *name,
       const codegen::AstPtr &ast)
{
    exec::Buffers buf(p);
    for (size_t t = 0; t < p.tensors().size(); ++t)
        if (p.tensor(t).kind == ir::TensorKind::Input)
            buf.fillPattern(t, 42 + t);

    memsim::MemoryHierarchy mem(
        memsim::CacheConfig{16 * 1024, 64, 8, "L1"},
        memsim::CacheConfig{256 * 1024, 64, 16, "L2"});
    for (size_t t = 0; t < p.tensors().size(); ++t) {
        mem.addSpace(t, p.tensorSize(t));
        mem.addSpace(p.tensors().size() + t, p.tensorSize(t));
    }
    auto stats = exec::run(p, ast, buf,
                           [&](int space, int64_t off, bool w) {
                               mem.access(space, off, w);
                           });
    std::printf("%-12s instances=%9llu  L1 miss=%5.2f%%  "
                "DRAM=%7.2f MB  model-32t=%7.3f ms\n",
                name, (unsigned long long)stats.instances,
                mem.stats().l1MissRate() * 100,
                mem.stats().dramBytes / 1e6,
                perfmodel::modeledCpuMs(stats, mem.stats(), 32));
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::PipelineConfig cfg;
    cfg.rows = argc > 1 ? std::atoll(argv[1]) : 256;
    cfg.cols = argc > 2 ? std::atoll(argv[2]) : 256;

    ir::Program p = workloads::makeHarris(cfg);
    std::printf("Harris corner detection, %lldx%lld, %zu stages\n\n",
                (long long)cfg.rows, (long long)cfg.cols,
                p.statements().size());

    // Baseline heuristics, compiled through the driver.
    for (auto strategy :
         {driver::Strategy::MinFuse, driver::Strategy::SmartFuse,
          driver::Strategy::MaxFuse}) {
        driver::PipelineOptions opts;
        opts.strategy = strategy;
        opts.tileSizes = {32, 128};
        auto state = driver::Pipeline(opts).run(p);
        std::printf("%s clusters:", driver::strategyName(strategy));
        for (const auto &c : state.fusion.clusters) {
            std::printf(" {");
            for (size_t i = 0; i < c.size(); ++i)
                std::printf("%s%d", i ? "," : "", c[i]);
            std::printf("}");
        }
        std::printf("\n");
        report(p, driver::strategyName(strategy), state.ast);
    }

    // The paper's composition.
    driver::PipelineOptions opts;
    opts.strategy = driver::Strategy::Ours;
    opts.tileSizes = {32, 128};
    auto ours = driver::Pipeline(opts).run(p);
    std::printf("ours: %zu computation spaces, %zu fused "
                "intermediates, %zu skipped originals\n",
                ours.composed.spaces.size(),
                ours.composed.fusedIntermediates.size(),
                ours.composed.skippedStatements.size());
    report(p, "ours", ours.ast);
    return 0;
}
